#include "sim/parallel_driver.h"

#include <algorithm>
#include <utility>

namespace tmesh {

namespace {
// Identifies the worker context of the thread currently executing an event.
// Plain pointer (not owner-indexed) so nested drivers, should they ever
// exist, cannot confuse each other: ExecutingWorker() checks ownership.
thread_local void* tls_worker = nullptr;
}  // namespace

ParallelDriver::ParallelDriver(const Options& opts) : opts_(opts) {
  TMESH_CHECK(opts.workers >= 1);
  TMESH_CHECK(opts.hosts >= 1);
  TMESH_CHECK_MSG(opts.lookahead > 0,
                  "conservative parallel driving needs a positive lookahead "
                  "(Network::MinCrossHostDelayMs() returned 0?)");
  for (int i = 0; i < opts.workers; ++i) {
    Worker& w = workers_.emplace_back();
    w.owner = this;
    w.index = static_cast<std::size_t>(i);
  }
  for (Worker& w : workers_) {
    w.thread = std::thread([this, &w] { WorkerLoop(w); });
  }
}

ParallelDriver::~ParallelDriver() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_threads_ = true;
  }
  cv_work_.notify_all();
  for (Worker& w : workers_) w.thread.join();
  // Pending closures (if the driver is destroyed with events still queued)
  // are destroyed without running by the node pools' destructors.
}

ParallelDriver::Worker* ParallelDriver::ExecutingWorker() const {
  auto* w = static_cast<Worker*>(tls_worker);
  return (w != nullptr && w->owner == this) ? w : nullptr;
}

SimTime ParallelDriver::Now() const {
  const Worker* w = ExecutingWorker();
  return w != nullptr ? w->now : now_;
}

std::size_t ParallelDriver::CurrentLane() const {
  const Worker* w = ExecutingWorker();
  return w != nullptr ? w->index : 0;
}

ParallelDriver::Node* ParallelDriver::Alloc(Worker& w) {
  if (!w.free_list.empty()) {
    Node* n = w.free_list.back();
    w.free_list.pop_back();
    return n;
  }
  return &w.pool.emplace_back();
}

void ParallelDriver::Release(Worker& w, Node* n) {
  n->fn = TransportClosure();
  n->exec_index = -1;
  w.free_list.push_back(n);
}

void ParallelDriver::PushHeap(Worker& w, Node* n) {
  w.heap.push_back(n);
  std::push_heap(w.heap.begin(), w.heap.end(),
                 [](const Node* a, const Node* b) { return Before(b, a); });
}

ParallelDriver::Node* ParallelDriver::PopHeap(Worker& w) {
  std::pop_heap(w.heap.begin(), w.heap.end(),
                [](const Node* a, const Node* b) { return Before(b, a); });
  Node* n = w.heap.back();
  w.heap.pop_back();
  return n;
}

void ParallelDriver::ScheduleClosureOnHost(HostId host, SimTime when,
                                           TransportClosure fn) {
  TMESH_CHECK(host >= 0 && host < opts_.hosts);
  Worker* self = ExecutingWorker();
  Worker& target = WorkerOf(host);
  if (self == nullptr) {
    // Outside Run(): the main thread owns everything; assign the final seq
    // directly, exactly like the sequential engine's schedule-time
    // numbering.
    TMESH_CHECK(when >= now_);
    Node* n = Alloc(target);
    n->when = when;
    n->seq = next_seq_++;
    n->host = host;
    n->fn = std::move(fn);
    PushHeap(target, n);
    return;
  }
  if (&target == self) {
    TMESH_CHECK(when >= self->now);
    Node* n = Alloc(*self);
    n->when = when;
    n->seq = kProvisionalBit | self->provisional++;
    n->host = host;
    n->fn = std::move(fn);
    PushHeap(*self, n);
    self->children.push_back(ChildRef{n, 0});
    return;
  }
  // Cross-partition: the conservative condition. A violation means the
  // workload's cross-host delay undercut the topology's declared
  // MinCrossHostDelayMs — a modeling bug, not a tolerable race.
  TMESH_CHECK_MSG(when >= window_end_,
                  "cross-partition schedule inside the lookahead window");
  self->outbox.push_back(Remote{host, when, kSeqUnassigned, std::move(fn)});
  self->children.push_back(ChildRef{nullptr, self->outbox.size() - 1});
}

void ParallelDriver::ScheduleClosureOnCurrent(SimTime when,
                                              TransportClosure fn) {
  Worker* self = ExecutingWorker();
  const HostId host = self != nullptr ? self->current_host : HostId{0};
  ScheduleClosureOnHost(host, when, std::move(fn));
}

void ParallelDriver::WorkerLoop(Worker& w) {
  tls_worker = &w;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock,
                    [&] { return stop_threads_ || round_ != seen; });
      if (stop_threads_) break;
      seen = round_;
    }
    RunWindow(w, window_end_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++done_count_ == workers_.size()) cv_done_.notify_one();
    }
  }
  tls_worker = nullptr;
}

void ParallelDriver::RunWindow(Worker& w, SimTime window_end) {
  while (!w.heap.empty() && w.heap.front()->when < window_end) {
    Node* n = PopHeap(w);
    w.now = n->when;
    w.current_host = n->host;
    n->exec_index = static_cast<std::int32_t>(w.exec.size());
    const auto child_begin = static_cast<std::uint32_t>(w.children.size());
    {
      // Destroy the closure before logging, mirroring the sequential
      // engine's invoke-then-destroy lifecycle (captures release eagerly).
      TransportClosure fn = std::move(n->fn);
      fn();
    }
    w.exec.push_back(
        ExecRecord{n, child_begin,
                   static_cast<std::uint32_t>(w.children.size())});
  }
}

std::size_t ParallelDriver::ReplayAndFinalize() {
  const auto heap_less = [](const Node* a, const Node* b) {
    return Before(b, a);
  };
  replay_heap_.clear();
  std::size_t total_exec = 0;
  for (Worker& w : workers_) {
    total_exec += w.exec.size();
    for (const ExecRecord& e : w.exec) {
      if ((e.node->seq & kProvisionalBit) == 0) replay_heap_.push_back(e.node);
    }
  }
  std::make_heap(replay_heap_.begin(), replay_heap_.end(), heap_less);

  std::size_t processed = 0;
  SimTime last_when = now_;
  while (!replay_heap_.empty()) {
    std::pop_heap(replay_heap_.begin(), replay_heap_.end(), heap_less);
    Node* n = replay_heap_.back();
    replay_heap_.pop_back();
    last_when = n->when;
    if (history_enabled_) history_.push_back({n->when, n->seq, n->host});
    ++processed;
    Worker& w = WorkerOf(n->host);
    const ExecRecord& e = w.exec[static_cast<std::size_t>(n->exec_index)];
    for (std::uint32_t i = e.child_begin; i < e.child_end; ++i) {
      ChildRef& c = w.children[i];
      const std::uint64_t seq = next_seq_++;
      if (c.local != nullptr) {
        // Monotone rename: provisional orders after every final seq and the
        // rename sequence follows replay (= worker execution) order, so the
        // pending heap's invariant is untouched.
        c.local->seq = seq;
        if (c.local->exec_index >= 0) {
          replay_heap_.push_back(c.local);
          std::push_heap(replay_heap_.begin(), replay_heap_.end(), heap_less);
        }
      } else {
        w.outbox[c.outbox_index].seq = seq;
      }
    }
  }
  // Every executed event must have surfaced with a final seq; anything less
  // means a parent link was lost and the canonical order is unprovable.
  TMESH_CHECK(processed == total_exec);

  for (Worker& w : workers_) {
    cross_partition_sends_ += w.outbox.size();
    for (Remote& r : w.outbox) {
      TMESH_CHECK(r.seq != kSeqUnassigned);
      Worker& t = WorkerOf(r.host);
      Node* n = Alloc(t);
      n->when = r.when;
      n->seq = r.seq;
      n->host = r.host;
      n->fn = std::move(r.fn);
      PushHeap(t, n);
    }
    w.outbox.clear();
    for (const ExecRecord& e : w.exec) Release(w, e.node);
    w.exec.clear();
    w.children.clear();
    w.provisional = 0;
  }

  events_run_ += processed;
  now_ = std::max(now_, last_when);
  return processed;
}

std::size_t ParallelDriver::Run() {
  TMESH_CHECK_MSG(ExecutingWorker() == nullptr,
                  "Run() re-entered from inside an event");
  std::size_t total = 0;
  for (;;) {
    SimTime head = kNoTime;
    for (const Worker& w : workers_) {
      if (!w.heap.empty() &&
          (head == kNoTime || w.heap.front()->when < head)) {
        head = w.heap.front()->when;
      }
    }
    if (head == kNoTime) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      window_end_ = head + opts_.lookahead;
      done_count_ = 0;
      ++round_;
    }
    cv_work_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [&] { return done_count_ == workers_.size(); });
    }
    ++windows_;
    total += ReplayAndFinalize();
  }
  return total;
}

bool ParallelDriver::Empty() const {
  TMESH_CHECK(ExecutingWorker() == nullptr);
  for (const Worker& w : workers_) {
    if (!w.heap.empty()) return false;
  }
  return true;
}

ParallelDriver::Stats ParallelDriver::stats() const {
  return Stats{next_seq_, events_run_, windows_, cross_partition_sends_};
}

}  // namespace tmesh
