// Conservative parallel discrete-event driver (DESIGN.md §3i).
//
// ReplicaRunner parallelizes *across* replicas; this driver parallelizes
// *inside* one run. Hosts are partitioned across W workers (host % W), each
// worker owns a host-affine sub-queue, and execution proceeds in
// barrier-window rounds: the main thread picks the global minimum pending
// timestamp T, every worker drains its own events with timestamps in
// [T, T + lookahead), and cross-partition schedules are buffered in
// per-worker outboxes that the main thread distributes at the barrier.
//
// The lookahead is the classic Chandy–Misra conservative condition,
// instantiated with the topology's bound: Network::MinCrossHostDelayMs() is
// a hard lower bound on how soon an event at one host can cause an event at
// another, so an event executing inside the window can only affect a
// *different* partition at or after the window's end — which is exactly what
// ScheduleClosureAtHost checks for cross-partition sends. Within a
// partition any delay (including zero) is fine: the partition's own heap
// serializes it.
//
// Byte-identity with the sequential Simulator — the repo-wide determinism
// contract — needs more than safe ordering: the sequential engine assigns
// the FIFO tiebreak seq *at schedule time*, in execution order of the
// parents. Workers cannot reproduce that numbering live (they execute
// concurrently), so the driver replays the window at the barrier:
//
//  * During the window a worker gives locally-scheduled children
//    *provisional* seqs (top bit set, so they order after every final seq;
//    monotone in schedule order within the worker), logs an execution
//    record per event with the range of children it scheduled, and buffers
//    cross-partition children (seq unassigned) in its outbox.
//  * At the barrier the main thread replays the executed events through a
//    (when, seq) min-heap seeded with the events whose seqs were already
//    final. Popping the heap yields events in exactly the sequential
//    execution order (induction: an event's children are scheduled while it
//    runs, so the sequential engine pops it before them; replay finalizes
//    children — assigning seqs from the shared counter, in the parent's
//    call order — at the moment their parent pops, before they can surface).
//    The numbering therefore *equals* the sequential schedule-time
//    numbering, event by event.
//  * Renaming a provisional seq to its final value never breaks a pending
//    sub-queue's heap invariant: provisional seqs order after all final
//    seqs, renames happen in replay (= sequential) order, and both orders
//    agree within a worker — the rename is monotone.
//
// The safety argument for cross-window ties: an in-window event X has
// X.when < window_end, a cross-partition arrival Z has Z.when >= window_end
// (checked at schedule time), so Z can never tie with or precede X; no
// ordering decision ever depends on events the barrier hasn't seen.
//
// Consequences pinned by tests/parallel_driver_test.cc: the (when, seq,
// host) history, every per-host side effect, and the final seq numbering
// are byte-identical to the sequential Simulator at every W, including
// W = 1. `windows` (rounds executed) is W-invariant too — the next window
// start is the global minimum head, which does not depend on the
// partitioning — so it is safe to export as a metric.
//
// Threading: worker-owned structures are touched only by their worker
// during a round and only by the main thread between rounds; the round /
// done handshake (one mutex, two condvars) provides the happens-before
// edges, so the driver is clean under ThreadSanitizer. Worker threads are
// spawned in the constructor and live until destruction; Run() may be
// called repeatedly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "transport/transport.h"

namespace tmesh {

class ParallelDriver {
 public:
  struct Options {
    int workers = 1;        // W >= 1; partitions = host % workers
    int hosts = 1;          // host-id domain, checked on every schedule
    SimTime lookahead = 0;  // must be > 0 (see Network::MinCrossHostDelayMs)
  };

  struct Stats {
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_run = 0;
    // Barrier-window rounds executed. W-invariant (see file comment).
    std::uint64_t windows = 0;
    // Outbox entries exchanged at barriers. Depends on W (the same send is
    // intra-partition at one W and cross at another) — keep it out of
    // thread-count-invariant metrics JSON; it is here for benchmarks.
    std::uint64_t cross_partition_sends = 0;
  };

  struct HistoryEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;
    HostId host = kNoHost;
    bool operator==(const HistoryEntry& o) const {
      return when == o.when && seq == o.seq && host == o.host;
    }
  };

  explicit ParallelDriver(const Options& opts);
  ~ParallelDriver();

  ParallelDriver(const ParallelDriver&) = delete;
  ParallelDriver& operator=(const ParallelDriver&) = delete;

  // Virtual clock. Inside an event: that event's timestamp (per-worker).
  // Outside Run(): the timestamp of the last event executed (0 initially).
  SimTime Now() const;

  int workers() const { return static_cast<int>(workers_.size()); }

  // The lane (worker index) of the currently executing event; 0 when called
  // outside event execution. Sized by workers().
  std::size_t CurrentLane() const;

  // Schedules `fn` at `when` on the partition owning `host`. From inside an
  // event: same-partition schedules may use any when >= the current event's
  // time; cross-partition schedules must land at or after the current
  // window's end (>= lookahead away — guaranteed when the delay to a
  // different host respects MinCrossHostDelayMs). From outside Run():
  // any when >= Now().
  template <class Fn>
  void ScheduleOnHost(HostId host, SimTime when, Fn&& fn) {
    ScheduleClosureOnHost(host, when, TransportClosure(std::forward<Fn>(fn)));
  }
  void ScheduleClosureOnHost(HostId host, SimTime when, TransportClosure fn);

  // Schedule without an explicit host tag: inside an event, stays on the
  // executing event's host (always safe); outside, lands on host 0.
  void ScheduleClosureOnCurrent(SimTime when, TransportClosure fn);

  // Drains every pending event in barrier-window rounds; returns the number
  // executed. Main thread only (the thread that constructed the driver).
  std::size_t Run();

  bool Empty() const;
  Stats stats() const;

  // History capture for the byte-identity suites: one (when, seq, host)
  // entry per executed event, in canonical order. Off by default.
  void EnableHistory(bool on) { history_enabled_ = on; }
  const std::vector<HistoryEntry>& history() const { return history_; }

 private:
  // Provisional-seq marker: sorts after every final seq (the final counter
  // never reaches 2^63), monotone per worker within a window.
  static constexpr std::uint64_t kProvisionalBit = 1ull << 63;
  static constexpr std::uint64_t kSeqUnassigned = ~0ull;

  struct Node {
    SimTime when = 0;
    std::uint64_t seq = 0;
    HostId host = kNoHost;
    std::int32_t exec_index = -1;  // this window's exec-log slot, -1 if none
    TransportClosure fn;
  };

  struct ExecRecord {
    Node* node = nullptr;
    std::uint32_t child_begin = 0;
    std::uint32_t child_end = 0;
  };

  // One scheduled child: either a local node (rename in place at replay) or
  // an outbox slot (stamp the final seq before distribution).
  struct ChildRef {
    Node* local = nullptr;
    std::uint64_t outbox_index = 0;
  };

  struct Remote {
    HostId host = kNoHost;
    SimTime when = 0;
    std::uint64_t seq = kSeqUnassigned;
    TransportClosure fn;
  };

  struct Worker {
    ParallelDriver* owner = nullptr;
    std::size_t index = 0;
    std::vector<Node*> heap;  // min-heap on (when, seq)
    std::deque<Node> pool;    // stable storage
    std::vector<Node*> free_list;
    std::vector<ExecRecord> exec;
    std::vector<ChildRef> children;
    std::vector<Remote> outbox;
    std::uint64_t provisional = 0;
    SimTime now = 0;
    HostId current_host = kNoHost;
    std::thread thread;
  };

  static bool Before(const Node* a, const Node* b) {
    return a->when != b->when ? a->when < b->when : a->seq < b->seq;
  }

  Worker* ExecutingWorker() const;  // tls worker of *this* driver, or null
  Worker& WorkerOf(HostId host) {
    return workers_[static_cast<std::size_t>(host) % workers_.size()];
  }
  Node* Alloc(Worker& w);
  void Release(Worker& w, Node* n);
  static void PushHeap(Worker& w, Node* n);
  static Node* PopHeap(Worker& w);

  void WorkerLoop(Worker& w);
  void RunWindow(Worker& w, SimTime window_end);
  std::size_t ReplayAndFinalize();  // barrier work: ordering + seqs + outboxes

  const Options opts_;
  std::deque<Worker> workers_;

  // Round handshake.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t round_ = 0;
  std::size_t done_count_ = 0;
  bool stop_threads_ = false;
  SimTime window_end_ = 0;  // stable while a round is in flight

  // Main-thread state.
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_run_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t cross_partition_sends_ = 0;
  SimTime now_ = 0;
  bool history_enabled_ = false;
  std::vector<HistoryEntry> history_;
  std::vector<Node*> replay_heap_;
};

// The sequential reference for the driver's byte-identity suites: the same
// ScheduleOnHost surface over the plain Simulator, mirroring its seq
// numbering and recording the same (when, seq, host) history. Workloads
// written against this API can be replayed on ParallelDriver at any W and
// compared stream-for-stream.
class SequentialHostReference {
 public:
  SequentialHostReference() = default;

  SimTime Now() const { return sim_.Now(); }

  template <class Fn>
  void ScheduleOnHost(HostId host, SimTime when, Fn&& fn) {
    const std::uint64_t seq = next_seq_++;
    sim_.ScheduleAt(when, [this, host, seq,
                           f = std::forward<Fn>(fn)]() mutable {
      history_.push_back({sim_.Now(), seq, host});
      f();
    });
  }

  std::size_t Run() { return sim_.Run(); }

  const std::vector<ParallelDriver::HistoryEntry>& history() const {
    return history_;
  }

 private:
  Simulator sim_;
  std::uint64_t next_seq_ = 0;
  std::vector<ParallelDriver::HistoryEntry> history_;
};

}  // namespace tmesh
