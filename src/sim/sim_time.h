// Simulated time in microseconds. Link delays in the paper are milliseconds
// with sub-millisecond components (stub links are 0.1..1 ms), so integer
// microseconds give exact, platform-independent arithmetic.
//
// Split out of simulator.h so low-level queue machinery and value types
// (NeighborRecord carries a SimTime join_time) can name SimTime without
// pulling in the scheduler.
#pragma once

#include <cstdint>

namespace tmesh {

using SimTime = std::int64_t;

// Sentinel for "no such instant": an absent deadline, an empty queue's next
// event time, a key server with no interval tick armed. Simulated time
// starts at 0 and never goes backward, so -1 can never be a real timestamp.
inline constexpr SimTime kNoTime = -1;

constexpr SimTime FromMillis(double ms) {
  return static_cast<SimTime>(ms * 1000.0 + 0.5);
}
constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / 1000.0;
}
constexpr SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * 1e6 + 0.5);
}

}  // namespace tmesh
