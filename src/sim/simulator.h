// Discrete event-driven simulator core.
//
// The paper evaluates everything on a custom event-driven simulator that
// models "the sending and the reception of a message as events" (§4). This
// module provides that core: a virtual clock, an event queue, and a run
// loop.
//
// Ordering contract (the determinism guarantee every experiment relies on):
// events run in strictly increasing (time, sequence-number) order, where the
// sequence number is assigned at Schedule* time. Two events scheduled for
// the same instant therefore always run in the order they were scheduled,
// on every platform, for every queue discipline. simulator_determinism_test
// pins this contract against the seed implementation's golden ordering.
//
// Throughput: scheduling goes through an arena pool of intrusively linked
// event records with small-buffer closure storage (sim/event_queue.h), so
// the message path performs no per-event heap allocation, and the default
// queue is a calendar queue with O(1) expected push/pop (a binary-heap
// discipline over the same records is available for cross-checking). The
// seed implementation (binary heap of std::function) survives as
// LegacySimulator for the golden-ordering fixture and the scheduler
// microbench baseline (bench/micro_sim_core.cc).
//
// Protocol modules schedule closures; there is no global node registry —
// each protocol owns its endpoints and captures them in its events. This
// keeps the simulator reusable for T-mesh, NICE, and the workload drivers.
//
// Execution driver: Run() drains the world and RunUntil() drains a time
// prefix, but the paper's key server is an *online* component — it batches
// joins/leaves and rekeys on a periodic tick — so callers also get budgeted
// execution: Step() runs exactly one event, and RunFor(EventBudget) runs
// until an event-count cap and/or virtual-time deadline binds, returning a
// RunStatus that says why it stopped and when the next event is due. All
// four drivers share one RunOne() path, so slicing a run into arbitrary
// RunFor chunks is bit-identical to a monolithic Run() by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/event_queue.h"
#include "sim/sim_time.h"

namespace tmesh {

// Which structure orders the pooled event records. kCalendar is the fast
// default; kBinaryHeap is the obviously correct reference the determinism
// tests (and sceptical benchmarks) compare against. Both obey the exact
// (time, seq) contract, so simulations are bit-identical across disciplines.
enum class QueueDiscipline { kCalendar, kBinaryHeap };

// Why a RunFor slice stopped.
enum class Exhausted {
  kDrained,   // queue empty: nothing left to run
  kEvents,    // the max_events cap bound first
  kDeadline,  // the head event lies beyond the deadline
};

// Budget for one RunFor slice. Both limits optional; when both are set the
// event cap is checked first, so a status of kDeadline guarantees the time
// limit (not the count) is what stopped the slice.
struct EventBudget {
  std::size_t max_events = 0;  // 0: no event cap
  SimTime deadline = kNoTime;  // kNoTime: no deadline; else run when <= deadline

  static EventBudget Events(std::size_t n) { return {n, kNoTime}; }
  static EventBudget Until(SimTime d) { return {0, d}; }
};

struct RunStatus {
  std::size_t events_run = 0;
  SimTime next_event_time = kNoTime;  // head event's time, kNoTime if drained
  Exhausted exhausted_reason = Exhausted::kDrained;
};

class Simulator {
 public:
  // Construction-time tuning. The discipline selects the ordering structure;
  // the remaining knobs configure the calendar queue's geometry (ignored by
  // kBinaryHeap) and cannot affect event order, only its cost.
  struct Options {
    QueueDiscipline discipline = QueueDiscipline::kCalendar;
    // Initial day width in microseconds; 0 keeps the built-in default.
    SimTime bucket_width_hint = 0;
    // Re-estimate the day width per epoch from observed inter-pop gaps
    // (event_queue.h header). On by default — it can only change geometry
    // cost, never event order, and the batch-rekey workloads this repo runs
    // are exactly the bursty shape it exists for. Disable to pin the static
    // collapse/growth-only retuning (the pre-adaptive behaviour).
    bool adaptive_retune = true;
  };

  Simulator() : Simulator(Options{}) {}
  explicit Simulator(const Options& opts) : discipline_(opts.discipline) {
    calendar_.Configure(opts.bucket_width_hint, opts.adaptive_retune);
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator() {
    // Destroy the closures of any never-run events (they may own resources
    // through captured smart pointers). The pool frees the records.
    DestroyPending();
  }

  // Returns the simulator to its freshly-constructed observable state —
  // pending events destroyed, clock at 0, sequence counter at 0, queues
  // back to pristine geometry — while keeping the event pool's arenas
  // allocated. A Reset() simulator runs any workload bit-identically to a
  // brand-new one (the ordering contract depends only on (time, seq), never
  // on queue geometry or pool layout); reusing the arenas is what lets a
  // ReplicaRunner worker execute thousands of replicas without re-warming
  // the allocator each time.
  void Reset() {
    DestroyPending();
    calendar_.Clear();
    heap_.Clear();
    now_ = 0;
    next_seq_ = 0;
    events_run_ = 0;
  }

  SimTime Now() const { return now_; }

  // Lifetime scheduler counters since construction or Reset(). Kept as a
  // plain struct (not a MetricsRegistry dependency) so the sim layer stays
  // standalone; experiments export these into their replica registries.
  // events_scheduled counts every Schedule* call (== queue pushes),
  // events_run every event popped and invoked, calendar_retunes every
  // calendar-geometry rebuild (0 under kBinaryHeap).
  struct Stats {
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_run = 0;
    std::uint64_t calendar_retunes = 0;
  };
  Stats stats() const { return {next_seq_, events_run_, calendar_.Retunes()}; }

  // Schedules `fn` to run at Now() + delay. delay must be non-negative.
  template <class Fn>
  void ScheduleIn(SimTime delay, Fn&& fn) {
    TMESH_CHECK(delay >= 0);
    ScheduleAt(now_ + delay, std::forward<Fn>(fn));
  }

  // Schedules `fn` at an absolute time >= Now(). The closure is constructed
  // in place in a pooled event record; see event_queue.h for the inline
  // capacity.
  template <class Fn>
  void ScheduleAt(SimTime when, Fn&& fn) {
    TMESH_CHECK_MSG(when >= now_, "cannot schedule into the past");
    simdetail::EventNode* n = pool_.Allocate();
    n->when = when;
    n->seq = next_seq_++;
    simdetail::EmplaceClosure(*n, std::forward<Fn>(fn));
    if (discipline_ == QueueDiscipline::kCalendar) {
      calendar_.Push(n);
    } else {
      heap_.Push(n);
    }
  }

  // Runs exactly one event (the (time, seq) minimum), advancing the clock
  // to its timestamp. Returns false — and runs nothing — on an empty queue.
  bool Step() { return RunOne(); }

  // Runs events until the budget binds or the queue drains. The event cap
  // is checked before the deadline, so exhausted_reason reports the binding
  // constraint deterministically. When the slice stops for any reason other
  // than the event cap, the clock advances to the deadline (if one was set
  // and lies ahead) — this is what makes a deadline-sliced loop land on the
  // same final Now() as one monolithic RunUntil(). An event-cap stop leaves
  // the clock at the last event run, so resuming mid-slice never skews time.
  RunStatus RunFor(const EventBudget& budget) {
    RunStatus status;
    for (;;) {
      if (budget.max_events != 0 && status.events_run >= budget.max_events) {
        status.exhausted_reason = Exhausted::kEvents;
        break;
      }
      simdetail::EventNode* head = PeekMin();
      if (head == nullptr) {
        status.exhausted_reason = Exhausted::kDrained;
        break;
      }
      if (budget.deadline != kNoTime && head->when > budget.deadline) {
        status.exhausted_reason = Exhausted::kDeadline;
        break;
      }
      RunOne();
      ++status.events_run;
    }
    if (status.exhausted_reason != Exhausted::kEvents &&
        budget.deadline != kNoTime && now_ < budget.deadline) {
      now_ = budget.deadline;
    }
    if (simdetail::EventNode* head = PeekMin()) {
      status.next_event_time = head->when;
    }
    return status;
  }

  // Runs events until the queue drains. Returns the number of events run.
  std::size_t Run() { return RunFor(EventBudget{}).events_run; }

  // Runs events with time <= deadline; leaves later events queued and
  // advances the clock to the deadline.
  std::size_t RunUntil(SimTime deadline) {
    TMESH_CHECK(deadline >= 0);  // kNoTime would mean "no deadline" to RunFor
    return RunFor(EventBudget::Until(deadline)).events_run;
  }

  bool Empty() const { return Pending() == 0; }
  std::size_t Pending() const {
    return discipline_ == QueueDiscipline::kCalendar ? calendar_.Size()
                                                     : heap_.Size();
  }

  QueueDiscipline discipline() const { return discipline_; }

 private:
  // Destroys the closures of all never-run events and recycles their
  // records. Leaves the queue structures' bookkeeping untouched (the caller
  // clears or destroys them next).
  void DestroyPending() {
    std::vector<simdetail::EventNode*> pending;
    calendar_.CollectAll(pending);
    const auto& h = heap_.Nodes();
    pending.insert(pending.end(), h.begin(), h.end());
    for (simdetail::EventNode* n : pending) {
      n->DestroyClosure();
      pool_.Release(n);
    }
  }

  simdetail::EventNode* PeekMin() {
    if (discipline_ == QueueDiscipline::kCalendar) return calendar_.PeekMin();
    return heap_.Empty() ? nullptr : heap_.Top();
  }

  bool RunOne() {
    simdetail::EventNode* n;
    if (discipline_ == QueueDiscipline::kCalendar) {
      n = calendar_.PopMin();
      if (n == nullptr) return false;
    } else {
      if (heap_.Empty()) return false;
      n = heap_.Pop();
    }
    TMESH_DCHECK(n->when >= now_);
    now_ = n->when;
    ++events_run_;
    // The record is already unlinked, so re-entrant scheduling is safe; the
    // guard recycles it even if the closure throws (TMESH_CHECK).
    struct Recycle {
      simdetail::EventNode* n;
      simdetail::EventPool* pool;
      ~Recycle() {
        n->DestroyClosure();
        pool->Release(n);
      }
    } recycle{n, &pool_};
    n->Invoke();
    return true;
  }

  const QueueDiscipline discipline_ = QueueDiscipline::kCalendar;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;  // doubles as the events-scheduled count
  std::uint64_t events_run_ = 0;
  simdetail::EventPool pool_;
  simdetail::CalendarQueue calendar_;
  simdetail::NodeHeap heap_;  // used iff discipline_ == kBinaryHeap
};

// Chunked drivers for callers that want a --step knob without writing the
// loop themselves: step == 0 delegates to the monolithic call, step > 0
// slices the same work into event-capped RunFor chunks. Identical results
// either way (one RunOne path underneath); the benches and the fuzzer use
// these to *prove* that, not merely assume it.
inline std::size_t DrainSliced(Simulator& sim, std::size_t step) {
  if (step == 0) return sim.Run();
  std::size_t total = 0;
  for (;;) {
    RunStatus s = sim.RunFor(EventBudget::Events(step));
    total += s.events_run;
    if (s.exhausted_reason != Exhausted::kEvents) return total;
  }
}

inline std::size_t RunUntilSliced(Simulator& sim, SimTime deadline,
                                  std::size_t step) {
  if (step == 0) return sim.RunUntil(deadline);
  TMESH_CHECK(deadline >= 0);
  std::size_t total = 0;
  for (;;) {
    RunStatus s = sim.RunFor(EventBudget{step, deadline});
    total += s.events_run;
    if (s.exhausted_reason != Exhausted::kEvents) return total;
  }
}

}  // namespace tmesh
