// Discrete event-driven simulator core.
//
// The paper evaluates everything on a custom event-driven simulator that
// models "the sending and the reception of a message as events" (§4). This
// module provides that core: a virtual clock, an event queue, and a run
// loop.
//
// Ordering contract (the determinism guarantee every experiment relies on):
// events run in strictly increasing (time, sequence-number) order, where the
// sequence number is assigned at Schedule* time. Two events scheduled for
// the same instant therefore always run in the order they were scheduled,
// on every platform, for every queue discipline. simulator_determinism_test
// pins this contract against the seed implementation's golden ordering.
//
// Throughput: scheduling goes through an arena pool of intrusively linked
// event records with small-buffer closure storage (sim/event_queue.h), so
// the message path performs no per-event heap allocation, and the default
// queue is a calendar queue with O(1) expected push/pop (a binary-heap
// discipline over the same records is available for cross-checking). The
// seed implementation (binary heap of std::function) survives as
// LegacySimulator for the golden-ordering fixture and the scheduler
// microbench baseline (bench/micro_sim_core.cc).
//
// Protocol modules schedule closures; there is no global node registry —
// each protocol owns its endpoints and captures them in its events. This
// keeps the simulator reusable for T-mesh, NICE, and the workload drivers.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/event_queue.h"
#include "sim/sim_time.h"

namespace tmesh {

// Which structure orders the pooled event records. kCalendar is the fast
// default; kBinaryHeap is the obviously correct reference the determinism
// tests (and sceptical benchmarks) compare against. Both obey the exact
// (time, seq) contract, so simulations are bit-identical across disciplines.
enum class QueueDiscipline { kCalendar, kBinaryHeap };

class Simulator {
 public:
  Simulator() = default;
  explicit Simulator(QueueDiscipline discipline) : discipline_(discipline) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator() {
    // Destroy the closures of any never-run events (they may own resources
    // through captured smart pointers). The pool frees the records.
    DestroyPending();
  }

  // Returns the simulator to its freshly-constructed observable state —
  // pending events destroyed, clock at 0, sequence counter at 0, queues
  // back to pristine geometry — while keeping the event pool's arenas
  // allocated. A Reset() simulator runs any workload bit-identically to a
  // brand-new one (the ordering contract depends only on (time, seq), never
  // on queue geometry or pool layout); reusing the arenas is what lets a
  // ReplicaRunner worker execute thousands of replicas without re-warming
  // the allocator each time.
  void Reset() {
    DestroyPending();
    calendar_.Clear();
    heap_.Clear();
    now_ = 0;
    next_seq_ = 0;
  }

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. delay must be non-negative.
  template <class Fn>
  void ScheduleIn(SimTime delay, Fn&& fn) {
    TMESH_CHECK(delay >= 0);
    ScheduleAt(now_ + delay, std::forward<Fn>(fn));
  }

  // Schedules `fn` at an absolute time >= Now(). The closure is constructed
  // in place in a pooled event record; see event_queue.h for the inline
  // capacity.
  template <class Fn>
  void ScheduleAt(SimTime when, Fn&& fn) {
    TMESH_CHECK_MSG(when >= now_, "cannot schedule into the past");
    simdetail::EventNode* n = pool_.Allocate();
    n->when = when;
    n->seq = next_seq_++;
    simdetail::EmplaceClosure(*n, std::forward<Fn>(fn));
    if (discipline_ == QueueDiscipline::kCalendar) {
      calendar_.Push(n);
    } else {
      heap_.Push(n);
    }
  }

  // Runs events until the queue drains. Returns the number of events run.
  std::size_t Run() {
    std::size_t n = 0;
    while (RunOne()) ++n;
    return n;
  }

  // Runs events with time <= deadline; leaves later events queued and
  // advances the clock to the deadline.
  std::size_t RunUntil(SimTime deadline) {
    std::size_t n = 0;
    for (simdetail::EventNode* head = PeekMin();
         head != nullptr && head->when <= deadline; head = PeekMin()) {
      RunOne();
      ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
  }

  bool Empty() const { return Pending() == 0; }
  std::size_t Pending() const {
    return discipline_ == QueueDiscipline::kCalendar ? calendar_.Size()
                                                     : heap_.Size();
  }

  QueueDiscipline discipline() const { return discipline_; }

 private:
  // Destroys the closures of all never-run events and recycles their
  // records. Leaves the queue structures' bookkeeping untouched (the caller
  // clears or destroys them next).
  void DestroyPending() {
    std::vector<simdetail::EventNode*> pending;
    calendar_.CollectAll(pending);
    const auto& h = heap_.Nodes();
    pending.insert(pending.end(), h.begin(), h.end());
    for (simdetail::EventNode* n : pending) {
      n->DestroyClosure();
      pool_.Release(n);
    }
  }

  simdetail::EventNode* PeekMin() {
    if (discipline_ == QueueDiscipline::kCalendar) return calendar_.PeekMin();
    return heap_.Empty() ? nullptr : heap_.Top();
  }

  bool RunOne() {
    simdetail::EventNode* n;
    if (discipline_ == QueueDiscipline::kCalendar) {
      n = calendar_.PopMin();
      if (n == nullptr) return false;
    } else {
      if (heap_.Empty()) return false;
      n = heap_.Pop();
    }
    TMESH_DCHECK(n->when >= now_);
    now_ = n->when;
    // The record is already unlinked, so re-entrant scheduling is safe; the
    // guard recycles it even if the closure throws (TMESH_CHECK).
    struct Recycle {
      simdetail::EventNode* n;
      simdetail::EventPool* pool;
      ~Recycle() {
        n->DestroyClosure();
        pool->Release(n);
      }
    } recycle{n, &pool_};
    n->Invoke();
    return true;
  }

  const QueueDiscipline discipline_ = QueueDiscipline::kCalendar;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  simdetail::EventPool pool_;
  simdetail::CalendarQueue calendar_;
  simdetail::NodeHeap heap_;  // used iff discipline_ == kBinaryHeap
};

}  // namespace tmesh
