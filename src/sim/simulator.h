// Discrete event-driven simulator core.
//
// The paper evaluates everything on a custom event-driven simulator that
// models "the sending and the reception of a message as events" (§4). This
// module provides that core: a virtual clock, an event queue ordered by
// (time, sequence number) so that simultaneous events run in a deterministic
// (schedule) order, and a run loop.
//
// Protocol modules schedule closures; there is no global node registry —
// each protocol owns its endpoints and captures them in its events. This
// keeps the simulator reusable for T-mesh, NICE, and the workload drivers.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"

namespace tmesh {

// Simulated time in microseconds. Link delays in the paper are milliseconds
// with sub-millisecond components (stub links are 0.1..1 ms), so integer
// microseconds give exact, platform-independent arithmetic.
using SimTime = std::int64_t;

constexpr SimTime FromMillis(double ms) {
  return static_cast<SimTime>(ms * 1000.0 + 0.5);
}
constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / 1000.0;
}
constexpr SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * 1e6 + 0.5);
}

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. delay must be non-negative.
  void ScheduleIn(SimTime delay, std::function<void()> fn) {
    TMESH_CHECK(delay >= 0);
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at an absolute time >= Now().
  void ScheduleAt(SimTime when, std::function<void()> fn) {
    TMESH_CHECK_MSG(when >= now_, "cannot schedule into the past");
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  // Runs events until the queue drains. Returns the number of events run.
  std::size_t Run() {
    std::size_t n = 0;
    while (!queue_.empty()) {
      RunOne();
      ++n;
    }
    return n;
  }

  // Runs events with time <= deadline; leaves later events queued and
  // advances the clock to the deadline.
  std::size_t RunUntil(SimTime deadline) {
    std::size_t n = 0;
    while (!queue_.empty() && queue_.top().when <= deadline) {
      RunOne();
      ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
  }

  bool Empty() const { return queue_.empty(); }
  std::size_t Pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-breaker: earlier-scheduled runs first
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void RunOne() {
    // Move the closure out before popping so re-entrant scheduling is safe.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    TMESH_DCHECK(ev.when >= now_);
    now_ = ev.when;
    ev.fn();
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace tmesh
