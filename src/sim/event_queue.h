// Pooled event records and the calendar queue that orders them.
//
// The simulator's hot loop is schedule → pop-min → invoke, millions of times
// per run. This file provides the two pieces that make that loop cheap:
//
//  * EventNode / EventPool — intrusively linked event records with inline
//    (small-buffer) closure storage, recycled through an arena free list.
//    Scheduling an event whose closure fits kInlineClosureBytes performs no
//    heap allocation once the pool is warm; oversized closures fall back to
//    a boxed heap copy (correct, just slower).
//
//  * CalendarQueue — a calendar/bucket queue (R. Brown, CACM 1988) giving
//    O(1) expected push/pop over the bucket ring, with a binary min-heap
//    overflow for events beyond the current "year" (far-future events such
//    as the key server's next batch-rekey tick). The queue preserves the
//    simulator's exact ordering contract: events are popped in strictly
//    increasing (when, seq) order, so simultaneous events always run in
//    schedule order, bit-identically to a binary heap over the same keys.
//
// NodeHeap is the same (when, seq) discipline as a plain binary heap of
// pooled records; the Simulator exposes it as a reference queue so tests can
// cross-check the calendar queue against a structure with obvious ordering.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/sim_time.h"

namespace tmesh {
namespace simdetail {

// Inline closure capacity per event record. Sized so every closure on the
// T-mesh message path (delivery and retry continuations: a couple of
// pointers, a UserId, a Packet with a shared encryption snapshot, an owned
// candidate vector) fits without a heap allocation.
inline constexpr std::size_t kInlineClosureBytes = 128;

struct ClosureOps {
  void (*invoke)(void* storage);
  void (*destroy)(void* storage);
};

struct EventNode {
  SimTime when = 0;
  std::uint64_t seq = 0;
  EventNode* next = nullptr;      // intrusive link: bucket list / free list
  const ClosureOps* ops = nullptr;
  alignas(std::max_align_t) std::byte storage[kInlineClosureBytes];

  void Invoke() { ops->invoke(storage); }
  void DestroyClosure() {
    ops->destroy(storage);
    ops = nullptr;
  }
};

template <class F>
struct InlineClosure {
  static void Invoke(void* s) { (*std::launder(reinterpret_cast<F*>(s)))(); }
  static void Destroy(void* s) { std::launder(reinterpret_cast<F*>(s))->~F(); }
  static constexpr ClosureOps kOps{&Invoke, &Destroy};
};

// Fallback for callables larger than the inline buffer: the buffer holds a
// single owning pointer to a heap copy.
template <class F>
struct BoxedClosure {
  static void Invoke(void* s) { (**std::launder(reinterpret_cast<F**>(s)))(); }
  static void Destroy(void* s) {
    delete *std::launder(reinterpret_cast<F**>(s));
  }
  static constexpr ClosureOps kOps{&Invoke, &Destroy};
};

template <class Fn>
void EmplaceClosure(EventNode& node, Fn&& fn) {
  using F = std::decay_t<Fn>;
  static_assert(std::is_invocable_r_v<void, F&>);
  if constexpr (sizeof(F) <= kInlineClosureBytes &&
                alignof(F) <= alignof(std::max_align_t)) {
    ::new (static_cast<void*>(node.storage)) F(std::forward<Fn>(fn));
    node.ops = &InlineClosure<F>::kOps;
  } else {
    ::new (static_cast<void*>(node.storage)) F*(new F(std::forward<Fn>(fn)));
    node.ops = &BoxedClosure<F>::kOps;
  }
}

// Arena of EventNodes: block-allocated, recycled through a free list. Nodes
// are stable in memory for the pool's lifetime; the pool never runs closure
// destructors (the queue owning the nodes does that).
class EventPool {
 public:
  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  EventNode* Allocate() {
    if (free_ != nullptr) {
      EventNode* n = free_;
      free_ = n->next;
      n->next = nullptr;
      return n;
    }
    if (brk_ == kBlockNodes) {
      blocks_.push_back(std::make_unique<EventNode[]>(kBlockNodes));
      brk_ = 0;
    }
    return &blocks_.back()[brk_++];
  }

  void Release(EventNode* n) {
    n->next = free_;
    free_ = n;
  }

 private:
  static constexpr std::size_t kBlockNodes = 256;
  std::vector<std::unique_ptr<EventNode[]>> blocks_;
  std::size_t brk_ = kBlockNodes;  // next unused node in blocks_.back()
  EventNode* free_ = nullptr;
};

inline bool NodeBefore(const EventNode* a, const EventNode* b) {
  if (a->when != b->when) return a->when < b->when;
  return a->seq < b->seq;
}

// Binary min-heap of pooled event records keyed by (when, seq). Used both
// as the calendar queue's far-future overflow and as the Simulator's
// reference discipline. Pointer elements mean pop needs no move-from-top
// tricks (the seed implementation's const_cast is structurally impossible).
class NodeHeap {
 public:
  bool Empty() const { return v_.empty(); }
  std::size_t Size() const { return v_.size(); }
  EventNode* Top() const { return v_.front(); }

  void Push(EventNode* n) {
    v_.push_back(n);
    std::push_heap(v_.begin(), v_.end(), After);
  }

  EventNode* Pop() {
    std::pop_heap(v_.begin(), v_.end(), After);
    EventNode* n = v_.back();
    v_.pop_back();
    return n;
  }

  // For teardown: every queued node, in no particular order.
  const std::vector<EventNode*>& Nodes() const { return v_; }

  // Forgets every node (the caller owns their closures/records).
  void Clear() { v_.clear(); }

 private:
  static bool After(const EventNode* a, const EventNode* b) {
    return NodeBefore(b, a);
  }
  std::vector<EventNode*> v_;
};

// Calendar queue with exact (when, seq) ordering.
//
// Geometry: `buckets_.size()` (a power of two) day-buckets of `width_`
// microseconds each; an event at time t lives in bucket (t / width_) mod
// nbuckets, in a list sorted by (when, seq). The cursor (day_, day_start_)
// tracks the day currently being drained and is always at or before the
// earliest queued event. Events at or beyond `horizon_` (one full "year"
// past the cursor) wait in the overflow heap and migrate into buckets as
// the cursor advances. Bucket count and width are retuned from the live
// event population whenever occupancy leaves the efficient band.
class CalendarQueue {
 public:
  CalendarQueue() {
    buckets_.assign(kMinBuckets, nullptr);
    tails_.assign(kMinBuckets, nullptr);
    SetDayFor(0);
  }
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  bool Empty() const { return count_ == 0; }
  std::size_t Size() const { return count_; }

  void Push(EventNode* n) {
    ++count_;
    if (n->when < day_start_) {
      // Keep the cursor at or before the minimum: an event scheduled for
      // "now" after the cursor coasted past empty days must still pop first.
      SetDayFor(n->when);
      InsertBucket(n);
      return;
    }
    if (n->when >= horizon_) {
      overflow_.Push(n);
      return;
    }
    InsertBucket(n);
    // Grow on the *total* population: a flood of far-future events parks in
    // the overflow heap, and only a retune (which drains it) can re-derive a
    // geometry that holds the flood in buckets.
    if (count_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
      Retune();
    }
  }

  // Smallest (when, seq) event, or nullptr. May advance the day cursor and
  // migrate overflow events, but removes nothing; after a non-null return
  // the minimum is the head of the cursor's bucket.
  EventNode* PeekMin() {
    if (count_ == 0) return nullptr;
    if (calendar_count_ == 0) {
      // Everything is far-future: re-anchor the year at the overflow
      // minimum and pull the new year's events in.
      SetDayFor(overflow_.Top()->when);
      MigrateOverflow();
    }
    for (std::size_t steps = 0; steps < buckets_.size(); ++steps) {
      EventNode* head = buckets_[day_];
      if (head != nullptr && head->when < day_start_ + width_) return head;
      AdvanceDay();
    }
    // Sparse population relative to the year: find the minimum directly
    // (bucket lists are sorted, so it is one of the heads) and jump there.
    EventNode* best = nullptr;
    for (EventNode* head : buckets_) {
      if (head != nullptr && (best == nullptr || NodeBefore(head, best))) {
        best = head;
      }
    }
    TMESH_DCHECK(best != nullptr);
    // A cursor jump must not skip overflow events that became eligible
    // while the cursor lagged (possible after a backward cursor move shrank
    // the horizon): migrate anything that precedes the calendar minimum.
    while (!overflow_.Empty() && NodeBefore(overflow_.Top(), best)) {
      best = overflow_.Pop();
      InsertBucket(best);
    }
    SetDayFor(best->when);
    MigrateOverflow();
    if (++direct_searches_ >= kDirectSearchLimit) {
      // The spread outgrew the year repeatedly; widen the days so the
      // normal scan works again.
      Retune();
    }
    return buckets_[day_];
  }

  EventNode* PopMin() {
    EventNode* n = PeekMin();
    if (n == nullptr) return nullptr;
    TMESH_DCHECK(n == buckets_[day_]);
    buckets_[day_] = n->next;
    if (n->next == nullptr) tails_[day_] = nullptr;
    n->next = nullptr;
    --calendar_count_;
    --count_;
    if (calendar_count_ * 8 < buckets_.size() && buckets_.size() > kMinBuckets) {
      Retune();
    }
    return n;
  }

  // Forgets every queued node (the caller owns their closures/records) and
  // restores the pristine geometry, so a cleared queue is indistinguishable
  // from a freshly constructed one.
  void Clear() {
    buckets_.assign(kMinBuckets, nullptr);
    tails_.assign(kMinBuckets, nullptr);
    overflow_.Clear();
    width_ = 64;
    count_ = 0;
    calendar_count_ = 0;
    direct_searches_ = 0;
    SetDayFor(0);
  }

  // For teardown: appends every queued node to `out` in no particular order.
  void CollectAll(std::vector<EventNode*>& out) const {
    for (EventNode* head : buckets_) {
      for (EventNode* n = head; n != nullptr; n = n->next) out.push_back(n);
    }
    const auto& o = overflow_.Nodes();
    out.insert(out.end(), o.begin(), o.end());
  }

 private:
  static constexpr std::size_t kMinBuckets = 32;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  static constexpr int kDirectSearchLimit = 8;

  void SetDayFor(SimTime t) {
    day_start_ = (t / width_) * width_;
    day_ = static_cast<std::size_t>(day_start_ / width_) & (buckets_.size() - 1);
    horizon_ = day_start_ + width_ * static_cast<SimTime>(buckets_.size());
  }

  void AdvanceDay() {
    day_ = (day_ + 1) & (buckets_.size() - 1);
    day_start_ += width_;
    horizon_ += width_;
    MigrateOverflow();
  }

  void MigrateOverflow() {
    while (!overflow_.Empty() && overflow_.Top()->when < horizon_) {
      InsertBucket(overflow_.Pop());
    }
  }

  void InsertBucket(EventNode* n) {
    ++calendar_count_;
    std::size_t b =
        static_cast<std::size_t>(n->when / width_) & (buckets_.size() - 1);
    EventNode* tail = tails_[b];
    if (tail == nullptr) {
      n->next = nullptr;
      buckets_[b] = tails_[b] = n;
      return;
    }
    if (NodeBefore(tail, n)) {  // FIFO fast path: same-time bursts append
      n->next = nullptr;
      tail->next = n;
      tails_[b] = n;
      return;
    }
    EventNode** p = &buckets_[b];
    while (NodeBefore(*p, n)) p = &(*p)->next;  // stops at or before tail
    n->next = *p;
    *p = n;
  }

  static std::size_t NextPow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  // Re-derive bucket count and width from the live population (including
  // the overflow heap), then redistribute. O(n log n), amortized across the
  // occupancy doubling/halving that triggered it.
  void Retune() {
    direct_searches_ = 0;
    std::vector<EventNode*> nodes;
    nodes.reserve(count_);
    for (auto& head : buckets_) {
      for (EventNode* n = head; n != nullptr;) {
        EventNode* next = n->next;
        nodes.push_back(n);
        n = next;
      }
      head = nullptr;
    }
    calendar_count_ = 0;
    while (!overflow_.Empty()) nodes.push_back(overflow_.Pop());

    if (nodes.empty()) {
      buckets_.assign(kMinBuckets, nullptr);
      tails_.assign(kMinBuckets, nullptr);
      SetDayFor(day_start_);
      return;
    }
    // Globally sorted reinsertion means every InsertBucket below hits the
    // O(1) tail-append fast path.
    std::sort(nodes.begin(), nodes.end(), NodeBefore);
    const SimTime lo = nodes.front()->when;
    const SimTime hi = nodes.back()->when;
    const auto n = static_cast<SimTime>(nodes.size());
    // Width ~ 3x the mean inter-event gap of the *near half* of the
    // population (median-based, so one far-future outlier — the key
    // server's next batch-rekey tick — cannot stretch the days until every
    // near-term event piles into a handful of buckets). Far events the
    // resulting year misses just go back to the overflow heap below. If the
    // near half sits at one instant (a synchronized burst), fall back to
    // the mean gap over the full span.
    if (nodes.size() >= 2 && hi > lo) {
      const SimTime half_span = nodes[nodes.size() / 2]->when - lo;
      const SimTime width =
          half_span > 0 ? 3 * 2 * half_span / n : 3 * (hi - lo) / n;
      width_ = std::clamp<SimTime>(width, 1, hi - lo + 1);
    }
    std::size_t nb = NextPow2(std::clamp(nodes.size(), kMinBuckets, kMaxBuckets));
    buckets_.assign(nb, nullptr);
    tails_.assign(nb, nullptr);
    SetDayFor(lo);
    for (EventNode* n2 : nodes) {
      if (n2->when >= horizon_) {
        overflow_.Push(n2);
      } else {
        InsertBucket(n2);
      }
    }
  }

  std::vector<EventNode*> buckets_;  // heads of (when, seq)-sorted lists
  std::vector<EventNode*> tails_;    // last node per bucket (FIFO appends)
  NodeHeap overflow_;                // events at/beyond horizon_
  SimTime width_ = 64;               // microseconds per day; retuned
  SimTime day_start_ = 0;            // lower bound of the cursor's day
  SimTime horizon_ = 0;              // day_start_ + width_ * nbuckets
  std::size_t day_ = 0;              // cursor bucket index
  std::size_t count_ = 0;            // total queued (buckets + overflow)
  std::size_t calendar_count_ = 0;   // queued in buckets
  int direct_searches_ = 0;          // sparse-population fallbacks since tune
};

}  // namespace simdetail
}  // namespace tmesh
