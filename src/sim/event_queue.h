// Pooled event records and the calendar queue that orders them.
//
// The simulator's hot loop is schedule → pop-min → invoke, millions of times
// per run. This file provides the two pieces that make that loop cheap:
//
//  * EventNode / EventPool — intrusively linked event records with inline
//    (small-buffer) closure storage, recycled through an arena free list.
//    Scheduling an event whose closure fits kInlineClosureBytes performs no
//    heap allocation once the pool is warm; oversized closures fall back to
//    a boxed heap copy (correct, just slower).
//
//  * CalendarQueue — a calendar/bucket queue (R. Brown, CACM 1988) giving
//    O(1) expected push/pop over the bucket ring, with a binary min-heap
//    overflow for events beyond the current "year" (far-future events such
//    as the key server's next batch-rekey tick). The queue preserves the
//    simulator's exact ordering contract: events are popped in strictly
//    increasing (when, seq) order, so simultaneous events always run in
//    schedule order, bit-identically to a binary heap over the same keys.
//
//    In adaptive mode (Simulator::Options::adaptive_retune) the queue also
//    re-estimates its day width per epoch from a sliding (exponentially
//    decayed) histogram of observed inter-pop gaps — Brown's sampling idea,
//    made robust to bimodal workloads — instead of trusting only the
//    population snapshot a collapse/growth retune happens to see. The batch
//    rekey workload is why: between interval ticks the queue pops sparse
//    timers against a standing far-future population, so a snapshot-derived
//    width balloons to interval scale, and the next tick's burst of
//    deliveries then piles into one bucket whose sorted insert degenerates
//    quadratically. The gap histogram remembers the burst cadence across
//    the lull and keeps the days burst-sized. Adaptation can never change
//    what order events pop in — only how much the geometry costs.
//
// NodeHeap is the same (when, seq) discipline as a plain binary heap of
// pooled records; the Simulator exposes it as a reference queue so tests can
// cross-check the calendar queue against a structure with obvious ordering.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/sim_time.h"

namespace tmesh {
namespace simdetail {

// Inline closure capacity per event record. Sized so every closure on the
// T-mesh message path (delivery and retry continuations: a couple of
// pointers, a UserId, a Packet with a shared encryption snapshot, an owned
// candidate vector) fits without a heap allocation — including when the
// closure arrives pre-erased as a TransportClosure (transport/transport.h:
// ops pointer + its own 128-byte inline buffer), so the SimTransport seam
// stays allocation-free on the message path too.
inline constexpr std::size_t kInlineClosureBytes = 160;

struct ClosureOps {
  void (*invoke)(void* storage);
  void (*destroy)(void* storage);
};

struct EventNode {
  SimTime when = 0;
  std::uint64_t seq = 0;
  EventNode* next = nullptr;      // intrusive link: bucket list / free list
  const ClosureOps* ops = nullptr;
  alignas(std::max_align_t) std::byte storage[kInlineClosureBytes];

  void Invoke() { ops->invoke(storage); }
  void DestroyClosure() {
    ops->destroy(storage);
    ops = nullptr;
  }
};

template <class F>
struct InlineClosure {
  static void Invoke(void* s) { (*std::launder(reinterpret_cast<F*>(s)))(); }
  static void Destroy(void* s) { std::launder(reinterpret_cast<F*>(s))->~F(); }
  static constexpr ClosureOps kOps{&Invoke, &Destroy};
};

// Fallback for callables larger than the inline buffer: the buffer holds a
// single owning pointer to a heap copy.
template <class F>
struct BoxedClosure {
  static void Invoke(void* s) { (**std::launder(reinterpret_cast<F**>(s)))(); }
  static void Destroy(void* s) {
    delete *std::launder(reinterpret_cast<F**>(s));
  }
  static constexpr ClosureOps kOps{&Invoke, &Destroy};
};

template <class Fn>
void EmplaceClosure(EventNode& node, Fn&& fn) {
  using F = std::decay_t<Fn>;
  static_assert(std::is_invocable_r_v<void, F&>);
  if constexpr (sizeof(F) <= kInlineClosureBytes &&
                alignof(F) <= alignof(std::max_align_t)) {
    ::new (static_cast<void*>(node.storage)) F(std::forward<Fn>(fn));
    node.ops = &InlineClosure<F>::kOps;
  } else {
    ::new (static_cast<void*>(node.storage)) F*(new F(std::forward<Fn>(fn)));
    node.ops = &BoxedClosure<F>::kOps;
  }
}

// Arena of EventNodes: block-allocated, recycled through a free list. Nodes
// are stable in memory for the pool's lifetime; the pool never runs closure
// destructors (the queue owning the nodes does that).
class EventPool {
 public:
  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  EventNode* Allocate() {
    if (free_ != nullptr) {
      EventNode* n = free_;
      free_ = n->next;
      n->next = nullptr;
      return n;
    }
    if (brk_ == kBlockNodes) {
      blocks_.push_back(std::make_unique<EventNode[]>(kBlockNodes));
      brk_ = 0;
    }
    return &blocks_.back()[brk_++];
  }

  void Release(EventNode* n) {
    n->next = free_;
    free_ = n;
  }

 private:
  static constexpr std::size_t kBlockNodes = 256;
  std::vector<std::unique_ptr<EventNode[]>> blocks_;
  std::size_t brk_ = kBlockNodes;  // next unused node in blocks_.back()
  EventNode* free_ = nullptr;
};

inline bool NodeBefore(const EventNode* a, const EventNode* b) {
  if (a->when != b->when) return a->when < b->when;
  return a->seq < b->seq;
}

// Binary min-heap of pooled event records keyed by (when, seq). Used both
// as the calendar queue's far-future overflow and as the Simulator's
// reference discipline. Pointer elements mean pop needs no move-from-top
// tricks (the seed implementation's const_cast is structurally impossible).
class NodeHeap {
 public:
  bool Empty() const { return v_.empty(); }
  std::size_t Size() const { return v_.size(); }
  EventNode* Top() const { return v_.front(); }

  void Push(EventNode* n) {
    v_.push_back(n);
    std::push_heap(v_.begin(), v_.end(), After);
  }

  EventNode* Pop() {
    std::pop_heap(v_.begin(), v_.end(), After);
    EventNode* n = v_.back();
    v_.pop_back();
    return n;
  }

  // For teardown: every queued node, in no particular order.
  const std::vector<EventNode*>& Nodes() const { return v_; }

  // Forgets every node (the caller owns their closures/records).
  void Clear() { v_.clear(); }

 private:
  static bool After(const EventNode* a, const EventNode* b) {
    return NodeBefore(b, a);
  }
  std::vector<EventNode*> v_;
};

// Calendar queue with exact (when, seq) ordering.
//
// Geometry: `buckets_.size()` (a power of two) day-buckets of `width_`
// microseconds each; an event at time t lives in bucket (t / width_) mod
// nbuckets, in a list sorted by (when, seq). The cursor (day_, day_start_)
// tracks the day currently being drained and is always at or before the
// earliest queued event. Events at or beyond `horizon_` (one full "year"
// past the cursor) wait in the overflow heap and migrate into buckets as
// the cursor advances. Bucket count and width are retuned from the live
// event population whenever occupancy leaves the efficient band.
class CalendarQueue {
 public:
  CalendarQueue() {
    buckets_.assign(kMinBuckets, nullptr);
    tails_.assign(kMinBuckets, nullptr);
    SetDayFor(0);
  }
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  // One-time construction tuning, applied by the Simulator before any Push:
  // `width_hint` overrides the initial (and Clear()-restored) day width in
  // microseconds (0 keeps the default), `adaptive` enables the per-epoch
  // width re-estimation described in the file header. Neither setting can
  // affect the (when, seq) pop order — only the geometry behind it.
  void Configure(SimTime width_hint, bool adaptive) {
    TMESH_CHECK_MSG(count_ == 0, "Configure on a non-empty queue");
    if (width_hint > 0) base_width_ = width_hint;
    adaptive_ = adaptive;
    width_ = base_width_;
    SetDayFor(0);
  }

  bool Empty() const { return count_ == 0; }
  std::size_t Size() const { return count_; }

  // Retune() invocations (occupancy-triggered and epoch adaptations) since
  // construction or Clear(). Observability only — never drives behaviour.
  std::uint64_t Retunes() const { return retunes_; }

  void Push(EventNode* n) {
    MaybeAdapt();
    ++count_;
    // Epoch push traffic counts only once the window has seen a pop: a fill
    // tail that precedes the window's first pop is not interleaved with it,
    // and it is the pop/push *interleaving* that makes a shrink profitable.
    // Without this, the pushes of a big pre-scheduled flood leak into the
    // first drain epoch and un-gate a redistribution of the whole backlog.
    if (pops_since_adapt_ > 0) ++pushes_since_adapt_;
    if (n->when < day_start_) {
      // Keep the cursor at or before the minimum: an event scheduled for
      // "now" after the cursor coasted past empty days must still pop first.
      SetDayFor(n->when);
      InsertBucket(n);
      return;
    }
    if (n->when >= horizon_) {
      overflow_.Push(n);
      return;
    }
    InsertBucket(n);
    // Grow on the *total* population: a flood of far-future events parks in
    // the overflow heap, and only a retune (which drains it) can re-derive a
    // geometry that holds the flood in buckets.
    if (count_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
      Retune();
    }
  }

  // Smallest (when, seq) event, or nullptr. May advance the day cursor and
  // migrate overflow events, but removes nothing; after a non-null return
  // the minimum is the head of the cursor's bucket.
  EventNode* PeekMin() {
    if (count_ == 0) return nullptr;
    if (calendar_count_ == 0) {
      // Everything is far-future: re-anchor the year at the overflow
      // minimum and pull the new year's events in.
      SetDayFor(overflow_.Top()->when);
      MigrateOverflow();
    }
    for (std::size_t steps = 0; steps < buckets_.size(); ++steps) {
      EventNode* head = buckets_[day_];
      if (head != nullptr && head->when < day_start_ + width_) return head;
      AdvanceDay();
    }
    // Sparse population relative to the year: find the minimum directly
    // (bucket lists are sorted, so it is one of the heads) and jump there.
    EventNode* best = nullptr;
    for (EventNode* head : buckets_) {
      if (head != nullptr && (best == nullptr || NodeBefore(head, best))) {
        best = head;
      }
    }
    TMESH_DCHECK(best != nullptr);
    // A cursor jump must not skip overflow events that became eligible
    // while the cursor lagged (possible after a backward cursor move shrank
    // the horizon): migrate anything that precedes the calendar minimum.
    while (!overflow_.Empty() && NodeBefore(overflow_.Top(), best)) {
      best = overflow_.Pop();
      InsertBucket(best);
    }
    SetDayFor(best->when);
    MigrateOverflow();
    // A year-scale cursor jump is as much an epoch boundary as a rollover.
    if (adaptive_) adapt_pending_ = true;
    if (++direct_searches_ >= kDirectSearchLimit) {
      // The spread outgrew the year repeatedly; widen the days so the
      // normal scan works again.
      Retune();
    }
    return buckets_[day_];
  }

  EventNode* PopMin() {
    MaybeAdapt();
    EventNode* n = PeekMin();
    if (n == nullptr) return nullptr;
    TMESH_DCHECK(n == buckets_[day_]);
    buckets_[day_] = n->next;
    if (n->next == nullptr) tails_[day_] = nullptr;
    n->next = nullptr;
    --calendar_count_;
    --count_;
    // Sample before any shrink retune below, so the retune sees the
    // freshest gap window.
    if (adaptive_) RecordPopGap(n->when);
    // Shrink on the *total* population, matching how Retune sizes the ring:
    // triggering on the calendar count alone thrashes when most events sit
    // in the overflow heap (a small-width geometry under a far-future
    // standing population) — each retune re-derives the same big ring from
    // the total, re-parks the far events, and immediately re-triggers.
    if (count_ * 8 < buckets_.size() && buckets_.size() > kMinBuckets) {
      Retune();
    }
    return n;
  }

  // Forgets every queued node (the caller owns their closures/records) and
  // restores the pristine geometry, so a cleared queue is indistinguishable
  // from a freshly constructed one.
  void Clear() {
    buckets_.assign(kMinBuckets, nullptr);
    tails_.assign(kMinBuckets, nullptr);
    overflow_.Clear();
    width_ = base_width_;
    count_ = 0;
    calendar_count_ = 0;
    direct_searches_ = 0;
    gap_hist_.fill(0);
    gap_samples_ = 0;
    recent_est_.fill(0);
    recent_est_head_ = 0;
    have_last_pop_ = false;
    pops_since_adapt_ = 0;
    pushes_since_adapt_ = 0;
    day_steps_ = 0;
    adapt_pending_ = false;
    retunes_ = 0;
    SetDayFor(0);
  }

  // For teardown: appends every queued node to `out` in no particular order.
  void CollectAll(std::vector<EventNode*>& out) const {
    for (EventNode* head : buckets_) {
      for (EventNode* n = head; n != nullptr; n = n->next) out.push_back(n);
    }
    const auto& o = overflow_.Nodes();
    out.insert(out.end(), o.begin(), o.end());
  }

 private:
  static constexpr std::size_t kMinBuckets = 32;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  static constexpr int kDirectSearchLimit = 8;
  // Adaptive-mode tuning. Gap samples live in a log2 histogram that is
  // halved at each epoch, so the estimator's memory spans a couple of
  // epochs of pops — long enough that a burst's gap samples survive a full
  // inter-burst lull of sparse timer pops, which would scroll any
  // fixed-length sample window into uselessness. An epoch is forced every
  // kEpochPops pops so tight clumps (which never roll the year over) still
  // adapt.
  static constexpr std::size_t kGapHistBits = 40;
  static constexpr std::uint64_t kMinGapSamples = 32;
  static constexpr std::size_t kEpochPops = 1024;
  static constexpr std::size_t kRecentEstimates = 3;

  void SetDayFor(SimTime t) {
    day_start_ = (t / width_) * width_;
    day_ = static_cast<std::size_t>(day_start_ / width_) & (buckets_.size() - 1);
    horizon_ = day_start_ + width_ * static_cast<SimTime>(buckets_.size());
  }

  void AdvanceDay() {
    day_ = (day_ + 1) & (buckets_.size() - 1);
    day_start_ += width_;
    horizon_ += width_;
    // A full trip around the ring is a year rollover — an epoch boundary
    // for the width estimator. The adaptation itself is deferred to the
    // next Push/PopMin entry: never resize the ring mid-scan.
    if (adaptive_ && ++day_steps_ >= buckets_.size()) {
      day_steps_ = 0;
      adapt_pending_ = true;
    }
    MigrateOverflow();
  }

  void MigrateOverflow() {
    while (!overflow_.Empty() && overflow_.Top()->when < horizon_) {
      InsertBucket(overflow_.Pop());
    }
  }

  void InsertBucket(EventNode* n) {
    ++calendar_count_;
    std::size_t b =
        static_cast<std::size_t>(n->when / width_) & (buckets_.size() - 1);
    EventNode* tail = tails_[b];
    if (tail == nullptr) {
      n->next = nullptr;
      buckets_[b] = tails_[b] = n;
      return;
    }
    if (NodeBefore(tail, n)) {  // FIFO fast path: same-time bursts append
      n->next = nullptr;
      tail->next = n;
      tails_[b] = n;
      return;
    }
    EventNode** p = &buckets_[b];
    while (NodeBefore(*p, n)) p = &(*p)->next;  // stops at or before tail
    n->next = *p;
    *p = n;
  }

  static std::size_t NextPow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  // Per-pop gap sampling for the adaptive width estimator: each inter-pop
  // gap lands in a log2-bucketed histogram, plus the pop counter that paces
  // epochs.
  void RecordPopGap(SimTime when) {
    if (have_last_pop_) {
      const SimTime gap = when - last_pop_when_;
      std::size_t b = 0;
      while ((SimTime{1} << b) < gap && b + 1 < kGapHistBits) ++b;
      ++gap_hist_[b];
      ++gap_samples_;
    }
    last_pop_when_ = when;
    have_last_pop_ = true;
    if (++pops_since_adapt_ >= kEpochPops) adapt_pending_ = true;
  }

  // Width rule over the decayed gap histogram: size days at ~1.5x the
  // 25th-percentile gap. The low percentile deliberately biases toward the
  // *dense* phase of a bimodal workload (rekey bursts interleaved with
  // sparse timer pops): an oversized day degenerates into one quadratic
  // sorted-insert chain at the next burst, while an undersized day only
  // costs a linear walk over empty buckets, so when in doubt, size for the
  // bursts. When the quartile gap is below one tick the days collapse to
  // width 1 — single-instant buckets, where every insert is a pure FIFO
  // append (same when, rising seq) and the sorted chain walk disappears
  // entirely. Returns 0 when the histogram holds too few samples to trust.
  SimTime EstimatedWidth() const {
    if (gap_samples_ < kMinGapSamples) return 0;
    const std::uint64_t quartile = (gap_samples_ + 3) / 4;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kGapHistBits; ++b) {
      cum += gap_hist_[b];
      if (cum >= quartile) {
        return std::max<SimTime>(1, 3 * (SimTime{1} << b) / 2);
      }
    }
    return 0;
  }

  // Epoch decay: halve every histogram bucket, so the estimate tracks a
  // sliding (exponentially weighted) window of the last few epochs.
  void DecayGapHist() {
    gap_samples_ = 0;
    for (std::uint32_t& c : gap_hist_) {
      c >>= 1;
      gap_samples_ += c;
    }
  }

  // Deferred epoch adaptation, run at the next Push/PopMin entry after an
  // epoch boundary (kEpochPops pops, a year rollover, or a cursor jump).
  // Only a >= 2x drift between the sampled estimate and the current width
  // pays for a redistribution, so a well-tuned queue re-checks for the cost
  // of computing one mean.
  void MaybeAdapt() {
    if (!adapt_pending_) return;
    adapt_pending_ = false;
    pops_since_adapt_ = 0;
    // A shrink pays off only through cheaper *inserts*: redistributing the
    // calendar under a narrower width does nothing for a drain-only phase
    // (pops without pushes, e.g. working through a pre-scheduled flood),
    // where it would cost a full O(n) redistribution for zero benefit. So
    // the shrink trigger requires the epoch to have carried real push
    // traffic. Growth is not gated: it helps the pop side too (fewer
    // empty-bucket steps per ring walk).
    const bool pushes_active = pushes_since_adapt_ * 4 >= kEpochPops;
    pushes_since_adapt_ = 0;
    const SimTime est = EstimatedWidth();
    DecayGapHist();
    if (est == 0) return;
    // Smooth with a min over the last few epoch estimates: an epoch that
    // closes mid-lull sees only sparse timer gaps, and acting on it alone
    // would balloon the days right before the next burst. The min keeps
    // the burst-scale estimate alive across a whole interval of epochs,
    // and biases small for the same cost-asymmetry reason as the
    // percentile above.
    recent_est_[recent_est_head_] = est;
    recent_est_head_ = (recent_est_head_ + 1) % kRecentEstimates;
    SimTime smoothed = est;
    for (SimTime e : recent_est_) {
      if (e > 0 && e < smoothed) smoothed = e;
    }
    // Asymmetric hysteresis: shrink on a 2x drift, grow only on 4x. The
    // log2 histogram quantizes the estimate to power-of-two steps, so a
    // gap distribution near a bucket boundary jitters its estimate 2x
    // epoch to epoch; a symmetric 2x trigger would turn that jitter into
    // a full redistribution every epoch. Growth gets the wide band
    // because oversizing is the expensive mistake (quadratic chains at
    // the next dense phase) while undersizing only costs linear ring
    // walks — the same cost asymmetry as the percentile choice. Ratchet
    // analysis: after a shrink to the 3-epoch min, growing back requires
    // a sustained 4x density drop, so boundary jitter cannot oscillate
    // the geometry.
    if (smoothed >= 4 * width_ || (pushes_active && 2 * smoothed <= width_)) {
      Retune(smoothed, /*calendar_only=*/true);
    }
  }

  // Re-derive bucket count and width, then redistribute. O(n log n),
  // amortized across the occupancy change (or epoch) that triggered it.
  // Width comes from `forced_width` when given (the epoch estimator), else
  // from the gap histogram when adaptive sampling has one (a population
  // snapshot taken between bursts would balloon the days; the histogram
  // remembers the burst cadence), else from the live population.
  //
  // `calendar_only` re-buckets just the in-calendar nodes under the new
  // width and keeps the ring size: epoch adaptations fire every few
  // thousand pops, and draining a large far-future standing population out
  // of the overflow heap and straight back into it each time is the one
  // cost that would make adaptation more expensive than the mis-tuned
  // geometry it repairs.
  void Retune(SimTime forced_width = 0, bool calendar_only = false) {
    ++retunes_;
    direct_searches_ = 0;
    adapt_pending_ = false;  // this retune is the epoch's adaptation
    pops_since_adapt_ = 0;
    pushes_since_adapt_ = 0;
    std::vector<EventNode*> nodes;
    nodes.reserve(calendar_only ? calendar_count_ : count_);
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      for (EventNode* n = buckets_[b]; n != nullptr;) {
        EventNode* next = n->next;
        nodes.push_back(n);
        n = next;
      }
      buckets_[b] = nullptr;
      tails_[b] = nullptr;
    }
    calendar_count_ = 0;
    if (!calendar_only) {
      while (!overflow_.Empty()) nodes.push_back(overflow_.Pop());
    }

    if (nodes.empty()) {
      if (!calendar_only) {
        buckets_.assign(kMinBuckets, nullptr);
        tails_.assign(kMinBuckets, nullptr);
      }
      if (forced_width > 0) width_ = forced_width;
      SetDayFor(day_start_);
      MigrateOverflow();
      return;
    }
    // Globally sorted reinsertion means every InsertBucket below hits the
    // O(1) tail-append fast path.
    std::sort(nodes.begin(), nodes.end(), NodeBefore);
    const SimTime lo = nodes.front()->when;
    const SimTime hi = nodes.back()->when;
    const auto n = static_cast<SimTime>(nodes.size());
    SimTime width = forced_width;
    if (width == 0 && adaptive_) width = EstimatedWidth();
    // Without a gap-histogram estimate: width ~ 3x the mean inter-event gap
    // of the *near half* of the population (median-based, so one far-future
    // outlier — the key server's next batch-rekey tick — cannot stretch the
    // days until every near-term event piles into a handful of buckets).
    // Far events the resulting year misses just go back to the overflow
    // heap below. If the near half sits at one instant (a synchronized
    // burst), fall back to the mean gap over the full span.
    if (width == 0 && nodes.size() >= 2 && hi > lo) {
      const SimTime half_span = nodes[nodes.size() / 2]->when - lo;
      width = half_span > 0 ? 3 * 2 * half_span / n : 3 * (hi - lo) / n;
    }
    if (width > 0) width_ = std::clamp<SimTime>(width, 1, hi - lo + 1);
    if (!calendar_only) {
      std::size_t nb =
          NextPow2(std::clamp(nodes.size(), kMinBuckets, kMaxBuckets));
      if (nb != buckets_.size()) {
        buckets_.assign(nb, nullptr);
        tails_.assign(nb, nullptr);
      }
    }
    SetDayFor(lo);
    for (EventNode* n2 : nodes) {
      if (n2->when >= horizon_) {
        overflow_.Push(n2);
      } else {
        InsertBucket(n2);
      }
    }
    // A width change moves the horizon; pull in any overflow events the new
    // (wider) year now covers so the "overflow is beyond the horizon"
    // invariant keeps holding.
    MigrateOverflow();
  }

  std::vector<EventNode*> buckets_;  // heads of (when, seq)-sorted lists
  std::vector<EventNode*> tails_;    // last node per bucket (FIFO appends)
  NodeHeap overflow_;                // events at/beyond horizon_
  SimTime width_ = 64;               // microseconds per day; retuned
  SimTime day_start_ = 0;            // lower bound of the cursor's day
  SimTime horizon_ = 0;              // day_start_ + width_ * nbuckets
  std::size_t day_ = 0;              // cursor bucket index
  std::size_t count_ = 0;            // total queued (buckets + overflow)
  std::size_t calendar_count_ = 0;   // queued in buckets
  int direct_searches_ = 0;          // sparse-population fallbacks since tune
  std::uint64_t retunes_ = 0;        // Retune() calls since Clear()

  // Adaptive width estimation (inert unless adaptive_ is set).
  SimTime base_width_ = 64;          // Configure()d initial/Clear() width
  bool adaptive_ = false;
  std::array<std::uint32_t, kGapHistBits> gap_hist_{};  // log2 inter-pop gaps
  std::uint64_t gap_samples_ = 0;    // sum of gap_hist_ (decays with it)
  std::array<SimTime, kRecentEstimates> recent_est_{};  // last epoch widths
  std::size_t recent_est_head_ = 0;
  SimTime last_pop_when_ = 0;
  bool have_last_pop_ = false;
  std::size_t pops_since_adapt_ = 0;
  std::size_t pushes_since_adapt_ = 0;
  std::size_t day_steps_ = 0;        // AdvanceDay calls since last rollover
  bool adapt_pending_ = false;       // epoch boundary seen; adapt on entry
};

}  // namespace simdetail
}  // namespace tmesh
