// Data-parallel execution of independent simulation replicas with a
// deterministic reduction.
//
// Every evaluation figure averages `--runs` fully independent replicas:
// each replica gets a derived seed, builds its own topology/session, and
// contributes one row of samples to the aggregate metric tables. Nothing is
// shared between replicas but the config, so — now that the Simulator owns
// all of its state (no globals) — replicas can run on a fixed-size thread
// pool. The contract that makes this safe to offer everywhere:
//
//  * Seeds are derived from the replica index exactly as the sequential
//    loops derive them (the runner never touches seeds; the body computes
//    its seed from Replica::index), so replica i computes the same result
//    no matter which worker runs it or in which order.
//  * Each worker owns one Simulator for its whole lifetime and calls
//    Reset() on it before every replica, so the body sees a
//    freshly-constructed simulator (clock 0, empty queue) while the event
//    pool's arenas stay warm across replicas.
//  * Results are merged by a caller-supplied merge callback invoked in
//    strictly increasing replica order, after which aggregate output is
//    byte-identical to the sequential loop regardless of thread count.
//    (With threads() == 1 the runner degenerates to exactly the old
//    sequential loop: body and merge alternate inline on the calling
//    thread, no worker threads are spawned.)
//
// LegacySimulator deliberately stays out of this: it is the frozen
// golden-ordering baseline, single-threaded by design.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/simulator.h"

namespace tmesh {

class ReplicaRunner {
 public:
  // threads <= 0 selects HardwareThreads(). threads == 1 is the sequential
  // path (no worker threads, streaming merge). `sim_options` configures the
  // worker-owned Simulators (queue discipline, calendar tuning) — geometry
  // only, so results stay byte-identical for every value, which is exactly
  // what lets the chunked-execution acceptance suite sweep disciplines and
  // adaptive retuning through an unchanged figure pipeline.
  explicit ReplicaRunner(int threads = 0,
                         const Simulator::Options& sim_options = {});

  int threads() const { return threads_; }
  const Simulator::Options& sim_options() const { return sim_options_; }

  // max(1, std::thread::hardware_concurrency()).
  static int HardwareThreads();

  // Thrown by Replica::CheckCancelled() when another replica has already
  // failed the pool. The runner swallows it — the first real exception is
  // what Run() rethrows — so a body can sprinkle CheckCancelled() between
  // RunFor slices without ever masking the failure that stopped the pool.
  struct Cancelled {};

  // What the body sees for one replica.
  struct Replica {
    int index;       // replica index in [0, runs)
    int worker;      // worker slot executing this replica
    Simulator& sim;  // worker-owned; Reset() before every replica
    // Non-null when running under a multi-worker pool: set once another
    // replica has thrown. The failed flag is published only after the
    // pool's first error is recorded, so a Cancelled thrown off this flag
    // can never race ahead of the error it defers to.
    const std::atomic<bool>* pool_failed = nullptr;

    // Long-running bodies slice their simulation with RunFor and poll this
    // between slices, so one replica's TMESH_CHECK failure stops the whole
    // figure in bounded time instead of after every in-flight replica's
    // full drain.
    bool IsCancelled() const {
      return pool_failed != nullptr &&
             pool_failed->load(std::memory_order_relaxed);
    }
    void CheckCancelled() const {
      if (IsCancelled()) throw Cancelled{};
    }
  };

  // Runs body(replica) for every index in [0, runs) across the pool, then
  // calls merge(index, result) in strictly increasing index order. The body
  // must be safe to call concurrently from different workers (each call
  // touches only its own replica's state); merge always runs on the calling
  // thread and never concurrently. Replica results are buffered until every
  // earlier replica has merged, so peak memory is O(runs) results — metric
  // vectors, in practice.
  template <class Body, class Merge>
  void Run(int runs, Body&& body, Merge&& merge) const {
    using T = std::decay_t<std::invoke_result_t<Body&, Replica&>>;
    static_assert(!std::is_void_v<T>,
                  "the replica body must return its result");
    if (runs <= 0) return;
    if (threads_ == 1 || runs == 1) {
      Simulator sim(sim_options_);
      for (int i = 0; i < runs; ++i) {
        sim.Reset();
        Replica r{i, 0, sim};
        merge(i, body(r));
      }
      return;
    }
    std::vector<std::optional<T>> slots(static_cast<std::size_t>(runs));
    Dispatch(runs, [&](Replica& r) {
      slots[static_cast<std::size_t>(r.index)].emplace(body(r));
    });
    for (int i = 0; i < runs; ++i) {
      auto& slot = slots[static_cast<std::size_t>(i)];
      merge(i, std::move(*slot));
      slot.reset();
    }
  }

 private:
  // Spawns min(threads_, runs) workers, each pulling replica indices from a
  // shared counter and running `task` with its worker-owned Simulator. The
  // first exception thrown by any replica stops the pool (in-flight
  // replicas finish; unclaimed ones never start) and is rethrown here after
  // all workers have joined.
  void Dispatch(int runs, const std::function<void(Replica&)>& task) const;

  int threads_;
  Simulator::Options sim_options_;
};

}  // namespace tmesh
