// Bridges Simulator::Stats into a MetricsRegistry. Kept out of simulator.h
// so the simulator core stays free of the metrics dependency; experiments
// include this where they already depend on both.
#pragma once

#include "metrics/registry.h"
#include "sim/parallel_driver.h"
#include "sim/simulator.h"

namespace tmesh {

// Adds the simulator's lifetime counters into `reg` under "sim.". Call once
// per run (after the drain); counters add, so several simulators (or the
// same one across Reset()s, exported each time) accumulate.
inline void ExportSimMetrics(const Simulator& sim, MetricsRegistry& reg) {
  const Simulator::Stats st = sim.stats();
  reg.GetCounter("sim.events_scheduled")
      ->Add(static_cast<std::int64_t>(st.events_scheduled));
  reg.GetCounter("sim.events_run")
      ->Add(static_cast<std::int64_t>(st.events_run));
  reg.GetCounter("sim.calendar_retunes")
      ->Add(static_cast<std::int64_t>(st.calendar_retunes));
}

// The parallel-driver counterpart: the event counts land under the same
// "sim." keys (they provably equal the sequential run's), and the barrier
// rounds under "psim.windows" (W-invariant, so safe to export). The
// driver's cross_partition_sends stat depends on W and is deliberately NOT
// exported — metrics JSON stays invariant across worker counts. A psim run
// has no "sim.calendar_retunes" (no calendar queue) — the one key that
// differs from a sequential run's registry.
inline void ExportPsimMetrics(const ParallelDriver& driver,
                              MetricsRegistry& reg) {
  const ParallelDriver::Stats st = driver.stats();
  reg.GetCounter("sim.events_scheduled")
      ->Add(static_cast<std::int64_t>(st.events_scheduled));
  reg.GetCounter("sim.events_run")
      ->Add(static_cast<std::int64_t>(st.events_run));
  reg.GetCounter("psim.windows")->Add(static_cast<std::int64_t>(st.windows));
}

}  // namespace tmesh
