// Transport over the conservative parallel driver (sim/parallel_driver.h,
// DESIGN.md §3i).
//
// This is the partitioned sibling of SimTransport's scheduling half: every
// host-tagged schedule routes to the partition that owns the host, and the
// driver's barrier-window replay guarantees the event stream is
// byte-identical to the sequential simulator. The datagram plane and
// cancellable timers are deliberately absent — TMesh's message path models
// delivery as host-tagged scheduled closures (the SimFabric hop is a
// convenience the mesh does not use), and the protocols that do use
// Send/ScheduleTimer (KeyServer, Silk, the HA facade) run sequentially.
// Attempting either here is a checked error rather than a silent wrong
// answer.
#pragma once

#include "common/check.h"
#include "sim/parallel_driver.h"
#include "transport/transport.h"

namespace tmesh {

class PsimTransport final : public Transport {
 public:
  explicit PsimTransport(ParallelDriver& driver, HostId local_host = 0)
      : driver_(driver), host_(local_host) {}

  SimTime Now() const override { return driver_.Now(); }
  HostId local_host() const override { return host_; }

  std::size_t ExecLanes() const override {
    return static_cast<std::size_t>(driver_.workers());
  }
  std::size_t ExecLane() const override { return driver_.CurrentLane(); }

  TimerId ScheduleTimer(SimTime /*delay*/, TransportClosure /*fn*/) override {
    TMESH_CHECK_MSG(false,
                    "PsimTransport has no cancellable timers; run this "
                    "protocol on a sequential transport");
    return kNoTimer;
  }
  bool CancelTimer(TimerId /*id*/) override {
    TMESH_CHECK_MSG(false, "PsimTransport has no cancellable timers");
    return false;
  }

  void Send(HostId /*to*/, const std::uint8_t* /*data*/,
            std::size_t /*size*/) override {
    TMESH_CHECK_MSG(false,
                    "PsimTransport has no datagram plane; the partitioned "
                    "mesh delivers via host-tagged schedules");
  }
  void OnReceive(RecvHandler /*handler*/) override {
    TMESH_CHECK_MSG(false, "PsimTransport has no datagram plane");
  }

 protected:
  void ScheduleClosureAt(SimTime when, TransportClosure fn) override {
    // Untagged schedules stay on the executing event's own host — always
    // safe (same partition), and identical to the sequential order.
    driver_.ScheduleClosureOnCurrent(when, std::move(fn));
  }
  void ScheduleClosureAtHost(HostId affine, SimTime when,
                             TransportClosure fn) override {
    driver_.ScheduleClosureOnHost(affine, when, std::move(fn));
  }

 private:
  ParallelDriver& driver_;
  HostId host_;
};

}  // namespace tmesh
