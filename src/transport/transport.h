// The transport substrate: one narrow runtime API under every protocol
// object (DESIGN.md §3h).
//
// TMesh, KeyServer, SilkGroup and the HA facade used to hard-bind
// `Simulator&`, which made the reproduction a simulator study by
// construction. This interface extracts the four things the protocol code
// actually consumes from its runtime — a clock, one-shot timers, a unicast
// datagram plane, and a local host identity — so the *same* protocol
// objects run over the discrete-event simulator (SimTransport,
// sim_transport.h) and as real processes over localhost UDP sockets
// (UdpTransport, udp_transport.h). The pattern follows DCT's syncps
// substrate: one transport abstraction under all distributors.
//
// Contract (pinned by tests/transport_conformance_test.cc against both
// implementations):
//
//  * Now() is a monotone microsecond clock starting at 0 (virtual time in
//    the simulator, monotonic wall time since construction for UDP). Time
//    never runs backwards, and every callback observes Now() >= the instant
//    it was scheduled for... minus nothing: a timer for T fires with
//    Now() >= T.
//  * ScheduleIn/ScheduleAt run a closure once, later. Closures scheduled
//    for the same instant fire in schedule order (FIFO among ties) — the
//    simulator's (time, seq) determinism contract, honored by the UDP
//    timer queue as well. ScheduleAt(when < Now()) is a checked error under
//    the simulator (virtual time cannot re-enter the past; protocol code
//    always computes deadlines from Now() within one event, where the clock
//    does not advance) and fires as soon as possible under a wall clock,
//    where the clock may advance between computing a deadline and the
//    schedule call landing.
//  * ScheduleTimer/CancelTimer is the cancellable variant, deliberately
//    separate so the fire-and-forget message path pays no bookkeeping.
//    CancelTimer returns true iff the closure had not fired and will not.
//  * Send() queues one datagram to a host; OnReceive registers the single
//    receive handler. Delivery is at-most-once, unordered, unreliable —
//    UDP semantics, which the simulator models with its per-hop delay and
//    the protocols' own §2.3 loss recovery on top.
//
// Threading: the simulator implementation is single-threaded; UdpTransport
// invokes every closure and receive handler on one internal event-loop
// thread, so protocol objects stay single-threaded there too — the loop
// thread is "the simulator" of the wall-clock world.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/sim_time.h"
#include "topology/network.h"

namespace tmesh {

// A move-only type-erased `void()` with small-buffer storage, the currency
// of the virtual scheduling seam. Sized so every closure on the T-mesh
// message path fits inline; together with the simulator's event-record
// inline capacity (sim/event_queue.h) this keeps the SimTransport message
// path free of per-event heap allocation. Oversized callables fall back to
// one boxed heap copy.
class TransportClosure {
 public:
  static constexpr std::size_t kInlineBytes = 128;

  TransportClosure() = default;

  template <class Fn,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, TransportClosure>>>
  TransportClosure(Fn&& fn) {  // NOLINT(google-explicit-constructor)
    using F = std::decay_t<Fn>;
    static_assert(std::is_invocable_r_v<void, F&>);
    if constexpr (sizeof(F) <= kInlineBytes &&
                  alignof(F) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) F(std::forward<Fn>(fn));
      ops_ = &InlineOps<F>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) F*(new F(std::forward<Fn>(fn)));
      ops_ = &BoxedOps<F>::kOps;
    }
  }

  TransportClosure(TransportClosure&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  TransportClosure& operator=(TransportClosure&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  TransportClosure(const TransportClosure&) = delete;
  TransportClosure& operator=(const TransportClosure&) = delete;

  ~TransportClosure() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  // Invokes the callable (callable once per emplacement; the object stays
  // destructible afterwards, matching the event queue's invoke-then-destroy
  // lifecycle).
  void operator()() {
    TMESH_CHECK(ops_ != nullptr);
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* from, void* to);  // move-construct + destroy from
    void (*destroy)(void* storage);
  };

  template <class F>
  struct InlineOps {
    static void Invoke(void* s) { (*std::launder(reinterpret_cast<F*>(s)))(); }
    static void Relocate(void* from, void* to) {
      F* src = std::launder(reinterpret_cast<F*>(from));
      ::new (to) F(std::move(*src));
      src->~F();
    }
    static void Destroy(void* s) {
      std::launder(reinterpret_cast<F*>(s))->~F();
    }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <class F>
  struct BoxedOps {
    static void Invoke(void* s) {
      (**std::launder(reinterpret_cast<F**>(s)))();
    }
    static void Relocate(void* from, void* to) {
      F** src = std::launder(reinterpret_cast<F**>(from));
      ::new (to) F*(*src);
    }
    static void Destroy(void* s) {
      delete *std::launder(reinterpret_cast<F**>(s));
    }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

// Identifies one cancellable timer within one Transport instance. Ids are
// never reused.
using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

class Transport {
 public:
  // The single datagram receive handler: (source host, payload bytes).
  // Payload framing is the caller's business — the protocol demo and soak
  // use the wire.cc format.
  using RecvHandler =
      std::function<void(HostId from, const std::uint8_t* data,
                         std::size_t size)>;

  virtual ~Transport() = default;

  // Microsecond clock, monotone, 0 at construction.
  virtual SimTime Now() const = 0;

  // The identity this endpoint sends from (and that peers' receive handlers
  // observe as `from`).
  virtual HostId local_host() const = 0;

  // Fire-and-forget one-shot scheduling. `fn` lands in the runtime's event
  // queue via one TransportClosure move — no std::function, and no heap
  // allocation for message-path-sized captures.
  template <class Fn>
  void ScheduleIn(SimTime delay, Fn&& fn) {
    TMESH_CHECK(delay >= 0);
    ScheduleClosureAt(Now() + delay, TransportClosure(std::forward<Fn>(fn)));
  }
  template <class Fn>
  void ScheduleAt(SimTime when, Fn&& fn) {
    ScheduleClosureAt(when, TransportClosure(std::forward<Fn>(fn)));
  }

  // ScheduleAt with a host-affinity tag: `affine` names the host whose state
  // the closure touches (the receiving member for a delivery, the sender for
  // a retransmit timer). On sequential transports this is identical to
  // ScheduleAt — the tag is advisory and the default ScheduleClosureAtHost
  // drops it — but the conservative parallel driver (sim/parallel_driver.h)
  // routes the event to the partition owning that host, so protocol code
  // that tags every event correctly can run partitioned with byte-identical
  // results. Cross-partition schedules must respect the lookahead: `when`
  // at least one lookahead past the current window start (checked).
  template <class Fn>
  void ScheduleAtHost(HostId affine, SimTime when, Fn&& fn) {
    ScheduleClosureAtHost(affine, when,
                          TransportClosure(std::forward<Fn>(fn)));
  }

  // Execution-lane introspection for per-lane scratch state. Sequential
  // transports run everything on one lane; the parallel driver reports one
  // lane per worker and the lane of the currently executing event. Protocol
  // code sizes scratch arrays by ExecLanes() and indexes them by ExecLane(),
  // which keeps the sequential path literally unchanged (lane 0 always).
  virtual std::size_t ExecLanes() const { return 1; }
  virtual std::size_t ExecLane() const { return 0; }

  // Cancellable one-shot timer. Kept separate from Schedule* so the
  // fire-and-forget path carries no cancellation bookkeeping.
  virtual TimerId ScheduleTimer(SimTime delay, TransportClosure fn) = 0;
  // True iff the timer existed and had not fired; its closure is destroyed
  // without running.
  virtual bool CancelTimer(TimerId id) = 0;

  // Queues one unreliable datagram to `to` (self-send allowed and loops
  // back through the receive path).
  virtual void Send(HostId to, const std::uint8_t* data, std::size_t size) = 0;
  void Send(HostId to, const std::vector<std::uint8_t>& payload) {
    Send(to, payload.data(), payload.size());
  }

  // Registers the receive handler (replacing any previous one; empty
  // detaches). Invoked on the transport's event thread.
  virtual void OnReceive(RecvHandler handler) = 0;

 protected:
  // The one virtual hop under ScheduleIn/ScheduleAt.
  virtual void ScheduleClosureAt(SimTime when, TransportClosure fn) = 0;

  // The virtual hop under ScheduleAtHost. Default: ignore the affinity tag
  // (sequential transports have one queue; host routing is a partitioned-
  // driver concern).
  virtual void ScheduleClosureAtHost(HostId affine, SimTime when,
                                     TransportClosure fn) {
    (void)affine;
    ScheduleClosureAt(when, std::move(fn));
  }
};

}  // namespace tmesh
