// SimTransport: the Transport interface over the discrete-event simulator.
//
// This adapter is the determinism-preserving half of the transport seam
// (DESIGN.md §3h). ScheduleIn/ScheduleAt delegate 1:1 to the simulator's
// Schedule* — same clock, same (time, seq) assignment order — so protocol
// code refactored onto Transport reproduces its pre-refactor event history
// byte-for-byte (pinned by transport_conformance_test's byte-identity suite
// and every existing determinism/differential golden). The cost of the seam
// on the message path is one virtual call plus one TransportClosure move
// per event; the simulator's event records were sized
// (sim/event_queue.h kInlineClosureBytes) so the moved closure still lands
// inline, keeping the path free of heap allocation.
//
// The datagram plane is provided by a SimFabric: a registry of endpoints
// over one simulator plus a delay model (the topology's one-way delays, or
// a fixed delay for tests). Send(to) schedules DispatchReceive at the
// destination after the model's delay. Protocol objects that only consume
// the timer/clock plane (TMesh, KeyServer, SilkGroup model their own
// messaging as timed closures) can use a fabric-less SimTransport, where
// Send is a checked error.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "transport/transport.h"

namespace tmesh {

class SimTransport;

// The simulated datagram plane: endpoints registered by host id, deliveries
// scheduled on the shared simulator after a modeled one-way delay.
// Endpoints must outlive any in-flight delivery (i.e. drain the simulator
// before destroying a registered SimTransport — the same lifetime rule the
// TMesh session handles follow).
class SimFabric {
 public:
  // Delays from the topology's one-way host latency.
  SimFabric(Simulator& sim, const Network& net) : sim_(sim), net_(&net) {}
  // Fixed one-way delay for every pair (conformance tests).
  SimFabric(Simulator& sim, SimTime fixed_delay)
      : sim_(sim), fixed_delay_(fixed_delay) {
    TMESH_CHECK(fixed_delay >= 0);
  }

  Simulator& simulator() { return sim_; }

  SimTime DelayFor(HostId from, HostId to) const {
    if (net_ != nullptr) return FromMillis(net_->OneWayDelayMs(from, to));
    return fixed_delay_;
  }

 private:
  friend class SimTransport;

  void Register(HostId host, SimTransport* endpoint) {
    const bool inserted = endpoints_.emplace(host, endpoint).second;
    TMESH_CHECK_MSG(inserted, "duplicate fabric endpoint for host");
  }
  void Unregister(HostId host) { endpoints_.erase(host); }

  void Deliver(HostId from, HostId to, std::vector<std::uint8_t> payload);

  Simulator& sim_;
  const Network* net_ = nullptr;
  SimTime fixed_delay_ = 0;
  std::unordered_map<HostId, SimTransport*> endpoints_;
};

class SimTransport final : public Transport {
 public:
  // Timer/clock plane only; Send is a checked error.
  explicit SimTransport(Simulator& sim, HostId host = 0)
      : sim_(sim), host_(host) {}
  // Full plane: registers this endpoint with the fabric.
  SimTransport(SimFabric& fabric, HostId host)
      : sim_(fabric.simulator()), host_(host), fabric_(&fabric) {
    fabric.Register(host, this);
  }
  ~SimTransport() override {
    if (fabric_ != nullptr) fabric_->Unregister(host_);
  }

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  Simulator& simulator() { return sim_; }

  // --- Transport ----------------------------------------------------------
  using Transport::Send;  // keep the vector convenience overload visible
  SimTime Now() const override { return sim_.Now(); }
  HostId local_host() const override { return host_; }

  TimerId ScheduleTimer(SimTime delay, TransportClosure fn) override {
    TMESH_CHECK(delay >= 0);
    const TimerId id = ++last_timer_;
    live_timers_.insert(id);
    struct Fire {
      SimTransport* self;
      TimerId id;
      TransportClosure fn;
      void operator()() {
        if (self->live_timers_.erase(id) != 0) fn();
      }
    };
    sim_.ScheduleAt(sim_.Now() + delay, Fire{this, id, std::move(fn)});
    return id;
  }

  bool CancelTimer(TimerId id) override {
    return live_timers_.erase(id) != 0;
  }

  void Send(HostId to, const std::uint8_t* data, std::size_t size) override {
    TMESH_CHECK_MSG(fabric_ != nullptr,
                    "Send on a SimTransport without a SimFabric");
    fabric_->Deliver(host_, to, std::vector<std::uint8_t>(data, data + size));
  }

  void OnReceive(RecvHandler handler) override {
    handler_ = std::move(handler);
  }

 protected:
  void ScheduleClosureAt(SimTime when, TransportClosure fn) override {
    sim_.ScheduleAt(when, std::move(fn));
  }

  // Host→partition routing is the parallel driver's concern; the sequential
  // simulator has one global (time, seq) queue, so the affinity tag carries
  // no information here and the event takes the exact same path (and seq)
  // as a plain ScheduleAt. Explicit rather than inherited so the identity
  // contract — same byte stream whether events are host-tagged or not — is
  // stated where SimTransport readers will look for it.
  void ScheduleClosureAtHost(HostId /*affine*/, SimTime when,
                             TransportClosure fn) override {
    sim_.ScheduleAt(when, std::move(fn));
  }

 private:
  friend class SimFabric;

  void DispatchReceive(HostId from, const std::vector<std::uint8_t>& payload) {
    if (handler_) handler_(from, payload.data(), payload.size());
  }

  Simulator& sim_;
  const HostId host_;
  SimFabric* fabric_ = nullptr;
  RecvHandler handler_;
  TimerId last_timer_ = kNoTimer;
  std::unordered_set<TimerId> live_timers_;
};

inline void SimFabric::Deliver(HostId from, HostId to,
                               std::vector<std::uint8_t> payload) {
  auto it = endpoints_.find(to);
  // Unknown destination: the datagram is dropped, like UDP to a closed
  // port.
  if (it == endpoints_.end()) return;
  SimTransport* target = it->second;
  sim_.ScheduleIn(DelayFor(from, to),
                  [target, from, payload = std::move(payload)]() {
                    target->DispatchReceive(from, payload);
                  });
}

}  // namespace tmesh
