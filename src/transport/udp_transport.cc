#include "transport/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace tmesh {
namespace {

// Frame header: magic + little-endian source host id.
constexpr std::uint8_t kMagic[4] = {'T', 'M', 'U', 'D'};
constexpr std::size_t kHeaderBytes = 8;
// Loopback datagrams up to the usual 64 KiB UDP bound.
constexpr std::size_t kMaxDatagram = 65536;

SimTime MonotonicMicros() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * 1000000 +
         static_cast<SimTime>(ts.tv_nsec) / 1000;
}

sockaddr_in LoopbackAddr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(const Options& opts)
    : host_(opts.host), auto_learn_peers_(opts.auto_learn_peers) {
  t0_ = MonotonicMicros();

  socket_fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  TMESH_CHECK_MSG(socket_fd_ >= 0, "UDP socket creation failed");
  sockaddr_in addr = LoopbackAddr(opts.port);
  TMESH_CHECK_MSG(::bind(socket_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "UDP bind failed");
  socklen_t len = sizeof(addr);
  TMESH_CHECK(::getsockname(socket_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0);
  port_ = ntohs(addr.sin_port);

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  TMESH_CHECK_MSG(wake_fd_ >= 0, "eventfd creation failed");

  epoll_fd_ = ::epoll_create1(0);
  TMESH_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = socket_fd_;
  TMESH_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, socket_fd_, &ev) == 0);
  ev.data.fd = wake_fd_;
  TMESH_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
}

UdpTransport::~UdpTransport() {
  Stop();
  // Destroy never-run closures (they may own resources).
  {
    std::lock_guard<std::mutex> lock(mu_);
    timers_.clear();
    live_timers_.clear();
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (socket_fd_ >= 0) ::close(socket_fd_);
}

void UdpTransport::AddPeer(HostId host, std::uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_[host] = port;
}

void UdpTransport::Start() {
  TMESH_CHECK_MSG(!started_, "UdpTransport already started");
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  started_ = true;
  loop_ = std::thread([this]() { Loop(); });
}

void UdpTransport::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  Wake();
  loop_.join();
  started_ = false;
  // The header's contract: closures still queued at Stop() are destroyed
  // without running — a restarted loop must not fire a previous life's
  // timers. Swap them out under the lock and destroy them outside it
  // (closure destructors may take time or re-enter the public API).
  // last_timer_ keeps counting across restarts, so ids are never reused and
  // a stale CancelTimer after a restart is a harmless `false`.
  std::vector<Timer> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphaned.swap(timers_);
    live_timers_.clear();
  }
}

SimTime UdpTransport::Now() const { return MonotonicMicros() - t0_; }

void UdpTransport::Wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore short writes.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void UdpTransport::PushTimer(SimTime when, TimerId id, TransportClosure fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    timers_.push_back(Timer{when, next_timer_seq_++, id, std::move(fn)});
    std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
  }
  Wake();
}

void UdpTransport::ScheduleClosureAt(SimTime when, TransportClosure fn) {
  // Unlike the simulator, the wall clock may advance between the caller
  // computing `when` and this call landing; a past deadline fires as soon
  // as the loop wakes.
  PushTimer(when, kNoTimer, std::move(fn));
}

TimerId UdpTransport::ScheduleTimer(SimTime delay, TransportClosure fn) {
  TMESH_CHECK(delay >= 0);
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = ++last_timer_;
    live_timers_.insert(id);
  }
  PushTimer(Now() + delay, id, std::move(fn));
  return id;
}

bool UdpTransport::CancelTimer(TimerId id) {
  // Cancellation must not retain the closure until its (possibly distant)
  // deadline — cancelled closures may own resources. Eagerly pop every
  // cancelled entry that has surfaced at the heap front; entries buried
  // deeper are released when they reach the front (here or in
  // FireDueTimers). Closures are destroyed outside the lock, and the loop
  // is woken so its epoll timeout re-arms against the new front.
  std::vector<Timer> dead;
  bool cancelled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled = live_timers_.erase(id) != 0;
    while (!timers_.empty() && timers_.front().id != kNoTimer &&
           live_timers_.count(timers_.front().id) == 0) {
      std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
      dead.push_back(std::move(timers_.back()));
      timers_.pop_back();
    }
  }
  if (!dead.empty()) Wake();
  return cancelled;
}

void UdpTransport::Send(HostId to, const std::uint8_t* data,
                        std::size_t size) {
  TMESH_CHECK_MSG(size + kHeaderBytes <= kMaxDatagram,
                  "datagram exceeds UDP bound");
  std::uint16_t peer_port = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = peers_.find(to);
    if (it == peers_.end()) return;  // unknown peer: dropped, UDP-style
    peer_port = static_cast<std::uint16_t>(it->second);
  }
  std::vector<std::uint8_t> frame(kHeaderBytes + size);
  std::memcpy(frame.data(), kMagic, 4);
  const auto from = static_cast<std::uint32_t>(host_);
  frame[4] = static_cast<std::uint8_t>(from & 0xff);
  frame[5] = static_cast<std::uint8_t>((from >> 8) & 0xff);
  frame[6] = static_cast<std::uint8_t>((from >> 16) & 0xff);
  frame[7] = static_cast<std::uint8_t>((from >> 24) & 0xff);
  if (size > 0) std::memcpy(frame.data() + kHeaderBytes, data, size);
  sockaddr_in addr = LoopbackAddr(peer_port);
  const ssize_t n =
      ::sendto(socket_fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (n == static_cast<ssize_t>(frame.size())) {
    datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Short send or sendto failure (ENOBUFS and friends): the datagram is
    // lost. Losing it is UDP semantics — the protocols own recovery — but
    // silent loss is indistinguishable from a transport bug, so it is
    // counted; the loopback soak asserts the counter stays 0.
    datagrams_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void UdpTransport::OnReceive(RecvHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handler_ = std::move(handler);
}

int UdpTransport::FireDueTimers() {
  for (;;) {
    Timer due;
    std::vector<Timer> dead;  // cancelled entries; destroyed outside the lock
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Purge cancelled entries at the front *before* computing the epoll
      // timeout: a cancelled front would otherwise set the sleep (up to the
      // 60 s clamp) and pin its closure until a deadline that no longer
      // means anything.
      while (!timers_.empty() && timers_.front().id != kNoTimer &&
             live_timers_.count(timers_.front().id) == 0) {
        std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
        dead.push_back(std::move(timers_.back()));
        timers_.pop_back();
      }
      if (timers_.empty()) return -1;
      const SimTime now = Now();
      if (timers_.front().when > now) {
        // ceil to whole milliseconds so a sub-ms residue does not busy-spin.
        const SimTime us = timers_.front().when - now;
        const SimTime ms = (us + 999) / 1000;
        return static_cast<int>(std::min<SimTime>(ms, 60'000));
      }
      std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
      due = std::move(timers_.back());
      timers_.pop_back();
      // The front was live under this same lock hold, so the pop cannot
      // race a cancel; retire the id now that the timer is firing.
      if (due.id != kNoTimer) live_timers_.erase(due.id);
    }
    due.fn();  // outside the lock: closures may schedule or send
  }
}

void UdpTransport::ReadDatagrams() {
  std::uint8_t buf[kMaxDatagram];
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n =
        ::recvfrom(socket_fd_, buf, sizeof(buf), 0,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient socket error: drop and carry on
    }
    if (n < static_cast<ssize_t>(kHeaderBytes) ||
        std::memcmp(buf, kMagic, 4) != 0) {
      continue;  // not ours: total decoding, drop silently
    }
    const HostId from = static_cast<HostId>(
        static_cast<std::uint32_t>(buf[4]) |
        (static_cast<std::uint32_t>(buf[5]) << 8) |
        (static_cast<std::uint32_t>(buf[6]) << 16) |
        (static_cast<std::uint32_t>(buf[7]) << 24));
    datagrams_received_.fetch_add(1, std::memory_order_relaxed);
    RecvHandler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (auto_learn_peers_) peers_[from] = ntohs(src.sin_port);
      handler = handler_;
    }
    if (handler) {
      handler(from, buf + kHeaderBytes,
              static_cast<std::size_t>(n) - kHeaderBytes);
    }
  }
}

void UdpTransport::Loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    const int timeout_ms = FireDueTimers();
    epoll_event events[8];
    const int nfds = ::epoll_wait(epoll_fd_, events, 8, timeout_ms);
    for (int i = 0; i < nfds; ++i) {
      if (events[i].data.fd == wake_fd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] ssize_t n =
            ::read(wake_fd_, &drain, sizeof(drain));
      } else if (events[i].data.fd == socket_fd_) {
        ReadDatagrams();
      }
    }
  }
}

}  // namespace tmesh
