// UdpTransport: the Transport interface over real localhost UDP sockets.
//
// The wall-clock half of the transport seam (DESIGN.md §3h): an epoll-based
// event loop on one dedicated thread drives a non-blocking UDP socket plus
// a (deadline, seq)-ordered timer queue, so the same protocol objects that
// run on the simulator run as actual processes exchanging datagrams over
// loopback (examples/multiproc_rekey.cc, scripts/soak_rekey.sh).
//
// Clock: CLOCK_MONOTONIC microseconds since construction — same unit and
// epoch convention as the simulator's virtual clock, so SimTime values mean
// the same thing on both sides of the seam.
//
// Timers: a binary min-heap keyed (deadline, schedule-seq). Ties fire in
// schedule order, honoring the simulator's determinism contract as far as a
// wall clock can (the *relative* order of same-deadline timers is exact;
// absolute firing is bounded below by the deadline and above by scheduling
// jitter, roughly the epoll timeout granularity of 1 ms). A deadline in the
// past fires as soon as the loop wakes. Cancelling a timer removes it from
// the live set immediately and releases its closure no later than when the
// entry surfaces at the heap front — CancelTimer purges the front eagerly
// and wakes the loop, so a cancelled closure never pins resources (or the
// loop's epoll timeout) out to a deadline that no longer means anything.
//
// Datagrams: framed as an 8-byte header (4-byte magic "TMUD" + u32le source
// host id) followed by the payload — the payload itself is whatever the
// caller framed, wire.cc encodings in the demo/soak. Peers are addressed by
// HostId through a host→(127.0.0.1, port) table populated by AddPeer() and,
// when auto_learn_peers is on, by the source address of every valid
// incoming frame (how the demo's key server learns its members' ephemeral
// ports from their join datagrams). Sends to unknown hosts are dropped —
// UDP semantics; the protocols own reliability.
//
// Threading: every closure, timer, and receive handler runs on the single
// loop thread, which is "the simulator thread" of the wall-clock world —
// protocol objects attached to this transport need no locking of their own
// as long as *all* interaction with them happens in loop-thread callbacks.
// The public API (Schedule*, Send, AddPeer, Cancel*) is thread-safe and may
// be called from any thread; the tsan preset runs the conformance suite and
// the multi-process smoke against this file.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "transport/transport.h"

namespace tmesh {

class UdpTransport final : public Transport {
 public:
  struct Options {
    HostId host = 0;          // identity stamped into outgoing frames
    std::uint16_t port = 0;   // bind port on 127.0.0.1; 0 = ephemeral
    bool auto_learn_peers = true;
  };

  // Binds the socket (so port() is known before any thread exists — the
  // demo reads it, then forks, then Start()s).
  explicit UdpTransport(const Options& opts);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // The bound 127.0.0.1 port.
  std::uint16_t port() const { return port_; }

  // Maps `host` to 127.0.0.1:`port` for Send().
  void AddPeer(HostId host, std::uint16_t port);

  // Starts / stops the event-loop thread. Timers and datagrams only fire
  // while the loop runs; Stop() joins the thread and is idempotent (the
  // destructor calls it). Closures still queued at Stop() are destroyed
  // without running.
  void Start();
  void Stop();

  // Loop-lifetime counters (post-Stop() reads are exact). A "dropped"
  // datagram is one Send() handed to sendto() that the kernel did not take
  // whole (short send, ENOBUFS, ...) — never expected on loopback, so the
  // soak asserts it stays 0. Sends to unknown hosts are not counted (that
  // drop is addressing, not transport).
  std::uint64_t datagrams_sent() const { return datagrams_sent_.load(); }
  std::uint64_t datagrams_received() const {
    return datagrams_received_.load();
  }
  std::uint64_t datagrams_dropped() const { return datagrams_dropped_.load(); }

  // --- Transport ----------------------------------------------------------
  using Transport::Send;  // keep the vector convenience overload visible
  SimTime Now() const override;
  HostId local_host() const override { return host_; }
  TimerId ScheduleTimer(SimTime delay, TransportClosure fn) override;
  bool CancelTimer(TimerId id) override;
  void Send(HostId to, const std::uint8_t* data, std::size_t size) override;
  void OnReceive(RecvHandler handler) override;

 protected:
  void ScheduleClosureAt(SimTime when, TransportClosure fn) override;

 private:
  struct Timer {
    SimTime when = 0;
    std::uint64_t seq = 0;     // FIFO among equal deadlines
    TimerId id = kNoTimer;     // kNoTimer: fire-and-forget (not cancellable)
    TransportClosure fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void Loop();
  void Wake();
  // Pushes a timer under the lock and wakes the loop to re-arm its timeout.
  void PushTimer(SimTime when, TimerId id, TransportClosure fn);
  // Runs every due timer; returns the epoll timeout (ms) until the next
  // deadline, or -1 for "no timers".
  int FireDueTimers();
  void ReadDatagrams();

  const HostId host_;
  const bool auto_learn_peers_;
  int socket_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: new timer / stop requested
  std::uint16_t port_ = 0;
  SimTime t0_ = 0;  // CLOCK_MONOTONIC µs at construction

  std::thread loop_;
  bool started_ = false;  // guarded by callers' single-threaded Start/Stop

  std::mutex mu_;
  bool stop_ = false;                      // guarded by mu_
  std::vector<Timer> timers_;              // min-heap (TimerLater), mu_
  std::uint64_t next_timer_seq_ = 0;       // mu_
  TimerId last_timer_ = kNoTimer;          // mu_
  std::unordered_set<TimerId> live_timers_;  // mu_
  std::unordered_map<HostId, std::uint32_t> peers_;  // host → port, mu_
  RecvHandler handler_;                    // mu_ (copied out to invoke)

  std::atomic<std::uint64_t> datagrams_sent_{0};
  std::atomic<std::uint64_t> datagrams_received_{0};
  std::atomic<std::uint64_t> datagrams_dropped_{0};
};

}  // namespace tmesh
