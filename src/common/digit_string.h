// DigitString: a string of base-B digits — the universal identifier of the
// paper's design.
//
// The paper assigns every user an ID of D digits of base B (§2.1, Table 1).
// Prefixes of user IDs identify ID-tree nodes, key-tree k-nodes, keys, and
// encryptions (the "coherent identification strategy" of §2.4/§2.5). A single
// value type represents all of these: a DigitString of length 0..D, where a
// full-length string is a user ID and shorter strings are prefixes. The empty
// string is the paper's null ID "[]" (the ID-tree root / the key server /
// the group key).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/check.h"

namespace tmesh {

// Maximum number of ID digits supported (the paper uses D = 5; Fig. 14
// explores up to 6). Kept small so DigitString stays a cheap value type.
inline constexpr int kMaxDigits = 8;

// Maximum digit base supported. The paper uses B = 256.
inline constexpr int kMaxBase = 256;

class DigitString {
 public:
  // The empty string "[]".
  constexpr DigitString() : digits_{}, size_(0) {}

  // From explicit digits.
  DigitString(std::initializer_list<int> digits) : digits_{}, size_(0) {
    TMESH_CHECK(static_cast<int>(digits.size()) <= kMaxDigits);
    for (int d : digits) Append(d);
  }

  static DigitString FromDigits(const std::uint8_t* digits, int n) {
    TMESH_CHECK(n >= 0 && n <= kMaxDigits);
    DigitString s;
    s.size_ = static_cast<std::uint8_t>(n);
    for (int i = 0; i < n; ++i) s.digits_[static_cast<std::size_t>(i)] = digits[i];
    return s;
  }

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // The i-th digit, counting from the left (the paper's u.ID[i]).
  int digit(int i) const {
    TMESH_DCHECK(i >= 0 && i < size_);
    return digits_[static_cast<std::size_t>(i)];
  }

  // The first `len` digits (the paper's u.ID[0 : len-1]). len may be 0
  // (yields the null string) or equal to size() (yields *this).
  DigitString Prefix(int len) const {
    TMESH_CHECK(len >= 0 && len <= size_);
    DigitString p;
    p.size_ = static_cast<std::uint8_t>(len);
    for (int i = 0; i < len; ++i) p.digits_[static_cast<std::size_t>(i)] = digits_[static_cast<std::size_t>(i)];
    return p;
  }

  // *this with `d` appended.
  DigitString Child(int d) const {
    DigitString c = *this;
    c.Append(d);
    return c;
  }

  // Drops the last digit. Precondition: not empty.
  DigitString Parent() const {
    TMESH_CHECK(size_ > 0);
    return Prefix(size_ - 1);
  }

  int LastDigit() const {
    TMESH_CHECK(size_ > 0);
    return digits_[static_cast<std::size_t>(size_ - 1)];
  }

  void Append(int d) {
    TMESH_CHECK(size_ < kMaxDigits);
    TMESH_CHECK(d >= 0 && d < kMaxBase);
    digits_[size_++] = static_cast<std::uint8_t>(d);
  }

  void SetDigit(int i, int d) {
    TMESH_DCHECK(i >= 0 && i < size_);
    TMESH_CHECK(d >= 0 && d < kMaxBase);
    digits_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(d);
  }

  // True iff *this is a prefix of `other`. Per the paper (§2.1): an ID is a
  // prefix of itself, and the null string is a prefix of every ID.
  bool IsPrefixOf(const DigitString& other) const {
    if (size_ > other.size_) return false;
    for (int i = 0; i < size_; ++i) {
      if (digits_[static_cast<std::size_t>(i)] != other.digits_[static_cast<std::size_t>(i)]) return false;
    }
    return true;
  }

  // Length of the longest common prefix with `other`.
  int CommonPrefixLen(const DigitString& other) const {
    int n = size_ < other.size_ ? size_ : other.size_;
    for (int i = 0; i < n; ++i) {
      if (digits_[static_cast<std::size_t>(i)] != other.digits_[static_cast<std::size_t>(i)]) return i;
    }
    return n;
  }

  friend bool operator==(const DigitString& a, const DigitString& b) {
    if (a.size_ != b.size_) return false;
    for (int i = 0; i < a.size_; ++i) {
      if (a.digits_[static_cast<std::size_t>(i)] != b.digits_[static_cast<std::size_t>(i)]) return false;
    }
    return true;
  }
  friend bool operator!=(const DigitString& a, const DigitString& b) {
    return !(a == b);
  }
  // Lexicographic with shorter-prefix-first; gives a stable total order for
  // ordered containers.
  friend bool operator<(const DigitString& a, const DigitString& b) {
    int n = a.size_ < b.size_ ? a.size_ : b.size_;
    for (int i = 0; i < n; ++i) {
      auto ai = a.digits_[static_cast<std::size_t>(i)], bi = b.digits_[static_cast<std::size_t>(i)];
      if (ai != bi) return ai < bi;
    }
    return a.size_ < b.size_;
  }

  std::size_t Hash() const {
    // FNV-1a over (size, digits).
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint8_t byte) {
      h ^= byte;
      h *= 1099511628211ull;
    };
    mix(size_);
    for (int i = 0; i < size_; ++i) mix(digits_[static_cast<std::size_t>(i)]);
    return static_cast<std::size_t>(h);
  }

  // Renders as the paper writes IDs: "[0,2,255]"; the null string is "[]".
  std::string ToString() const {
    std::string s = "[";
    for (int i = 0; i < size_; ++i) {
      if (i > 0) s += ',';
      s += std::to_string(static_cast<int>(digits_[static_cast<std::size_t>(i)]));
    }
    s += ']';
    return s;
  }

 private:
  std::array<std::uint8_t, kMaxDigits> digits_;
  std::uint8_t size_;
};

// Role aliases. A UserId is a full-length (D-digit) DigitString; a KeyId /
// EncryptionId is any prefix (the identification scheme of §2.4).
using UserId = DigitString;
using KeyId = DigitString;

struct DigitStringHash {
  std::size_t operator()(const DigitString& s) const { return s.Hash(); }
};

}  // namespace tmesh

template <>
struct std::hash<tmesh::DigitString> {
  std::size_t operator()(const tmesh::DigitString& s) const { return s.Hash(); }
};
