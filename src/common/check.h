// Lightweight invariant-checking macros used across the library.
//
// TMESH_CHECK is always on (it guards protocol invariants whose violation
// would silently corrupt a simulation); TMESH_DCHECK compiles out in
// NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tmesh {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace tmesh

#define TMESH_CHECK(cond)                                          \
  do {                                                             \
    if (!(cond)) ::tmesh::CheckFailed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define TMESH_CHECK_MSG(cond, msg)                                   \
  do {                                                               \
    if (!(cond)) ::tmesh::CheckFailed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define TMESH_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define TMESH_DCHECK(cond) TMESH_CHECK(cond)
#endif
