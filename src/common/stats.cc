#include "common/stats.h"

namespace tmesh {

std::size_t NearestRankIndex(double frac, std::size_t n) {
  TMESH_CHECK(n > 0);
  TMESH_CHECK(frac >= 0.0 && frac <= 1.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(frac * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return rank - 1;
}

double Percentile(std::vector<double> values, double p) {
  TMESH_CHECK(!values.empty());
  TMESH_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  return values[NearestRankIndex(p / 100.0, values.size())];
}

double Mean(const std::vector<double>& values) {
  TMESH_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

InverseCdf::InverseCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double InverseCdf::ValueAtFraction(double frac) const {
  TMESH_CHECK(!sorted_.empty());
  return sorted_[NearestRankIndex(frac, sorted_.size())];
}

double InverseCdf::FractionAtOrBelow(double threshold) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

void RankedRunStats::AddRun(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  if (!runs_.empty()) {
    TMESH_CHECK_MSG(samples.size() == runs_[0].size(),
                    "all runs must have the same population size");
  }
  runs_.push_back(std::move(samples));
}

double RankedRunStats::MeanAtRank(std::size_t rank) const {
  TMESH_CHECK(!runs_.empty());
  TMESH_CHECK(rank < runs_[0].size());
  double sum = 0.0;
  for (const auto& run : runs_) sum += run[rank];
  return sum / static_cast<double>(runs_.size());
}

double RankedRunStats::PercentileAtRank(std::size_t rank, double p) const {
  TMESH_CHECK(!runs_.empty());
  TMESH_CHECK(rank < runs_[0].size());
  std::vector<double> at_rank;
  at_rank.reserve(runs_.size());
  for (const auto& run : runs_) at_rank.push_back(run[rank]);
  return Percentile(std::move(at_rank), p);
}

}  // namespace tmesh
