// Deterministic random-number utilities.
//
// Every stochastic component of the library (topology generators, workload
// generators, protocol simulations) takes an explicit seed so that runs are
// exactly reproducible; nothing in the library reads global entropy.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace tmesh {

// A seeded pseudo-random generator with the handful of distributions the
// library needs. Thin wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    TMESH_DCHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    TMESH_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Bernoulli trial with probability p of true.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Index in [0, weights.size()) drawn proportionally to weights.
  std::size_t Weighted(const std::vector<double>& weights) {
    TMESH_DCHECK(!weights.empty());
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(0, i - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (for giving each subsystem its own
  // stream without coupling their consumption orders).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tmesh
