// Small statistics helpers shared by the protocols and the benchmark
// harness: percentiles (the ID-assignment protocol's F-percentile, §3.1.3)
// and inverse cumulative distributions (every latency/bandwidth figure in
// the paper's evaluation is an inverse CDF).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace tmesh {

// The p-percentile (p in [0,100]) of `values`, using nearest-rank on a
// sorted copy. The paper's joining users use the 90-percentile of measured
// RTTs to tolerate estimation error (§3.1.3).
double Percentile(std::vector<double> values, double p);

// Mean of values. CHECK-fails on an empty vector, matching Percentile's
// contract — an empty population is a caller bug, not a zero.
double Mean(const std::vector<double>& values);

// The 0-based index into a sorted population of size n for population
// fraction `frac` in [0, 1], nearest-rank convention: the smallest index
// covering at least ceil(frac * n) samples. frac = 0 gives 0, frac = 1
// gives n - 1. The single source of truth for fraction→rank mapping used
// by Percentile, InverseCdf::ValueAtFraction, and PrintRankedTable.
std::size_t NearestRankIndex(double frac, std::size_t n);

// An inverse cumulative distribution over per-user (or per-link) samples,
// the presentation used by Figs. 6-11, 13, 14: a point (x, y) reads as
// "fraction x of the population has value <= y".
class InverseCdf {
 public:
  explicit InverseCdf(std::vector<double> samples);

  // The value at population fraction `frac` in [0, 1]: the smallest y such
  // that at least ceil(frac * n) samples are <= y. frac = 1 gives the max.
  double ValueAtFraction(double frac) const;

  // The fraction of samples <= threshold (e.g. "78% of users have an RDP
  // less than 2").
  double FractionAtOrBelow(double threshold) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

// Accumulates one sample vector per run and reports, for each population
// rank, the cross-run mean and a high percentile — the presentation of
// Fig. 6 ("average user stress ... across all runs, as well as the
// 95-percentile value"). All runs must contribute vectors of equal length.
class RankedRunStats {
 public:
  void AddRun(std::vector<double> samples);

  std::size_t runs() const { return runs_.size(); }
  std::size_t ranks() const { return runs_.empty() ? 0 : runs_[0].size(); }

  // Mean across runs of the rank-th smallest sample.
  double MeanAtRank(std::size_t rank) const;
  // p-percentile across runs of the rank-th smallest sample.
  double PercentileAtRank(std::size_t rank, double p) const;

 private:
  std::vector<std::vector<double>> runs_;  // each sorted ascending
};

}  // namespace tmesh
