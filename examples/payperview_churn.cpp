// Pay-per-view: heavy churn around program boundaries, and what the cluster
// rekeying heuristic buys.
//
// 400 subscribers on a GT-ITM transit-stub internet. At a program boundary
// a quarter of the audience leaves while new subscribers flood in — the
// paper's stress scenario (§4.3). The example distributes the same interval
// under P1' (modified key tree + T-mesh + splitting) and P2' (plus the
// cluster rekeying heuristic) and compares rekey cost and the bandwidth at
// the most loaded users — the access links the paper worries about.
//
// Run: ./payperview_churn
#include <cstdio>

#include "common/stats.h"
#include "core/tmesh.h"
#include "protocols/group_session.h"
#include "topology/gtitm.h"

int main() {
  using namespace tmesh;

  GtItmParams topo;  // paper-scale transit-stub internet (~5000 routers)
  GtItmNetwork net(topo, 1 + 400 + 100, /*attach_seed=*/3);

  SessionConfig cfg;
  cfg.group = GroupParams{5, 256, 4};
  cfg.assign.thresholds_ms = {150.0, 30.0, 9.0, 3.0};
  cfg.with_nice = false;
  cfg.seed = 5;
  GroupSession session(net, 0, cfg);
  Rng rng(17);

  std::printf("subscribing 400 viewers...\n");
  SimTime now = 0;
  for (HostId h = 1; h <= 400; ++h) {
    now += FromSeconds(1);
    if (!session.Join(h, now).has_value()) return 1;
  }
  session.FlushRekeyState();

  // Program boundary: 100 leaves + 100 joins in one rekey interval.
  std::printf("program boundary: 100 leaves + 100 joins in one interval\n");
  for (int i = 0; i < 100; ++i) {
    auto victim = session.directory().RandomAliveMember(rng);
    session.Leave(*victim);
  }
  for (HostId h = 401; h <= 500; ++h) {
    now += FromSeconds(rng.UniformReal(0.1, 2));
    if (!session.Join(h, now).has_value()) return 1;
  }

  RekeyMessage full = session.key_tree().Rekey();
  RekeyMessage clustered = session.clusters().Rekey();

  auto distribute = [&](const char* name, const RekeyMessage& msg,
                        bool use_clusters) {
    Simulator sim;
    TMesh tmesh(session.directory(), sim);
    TMesh::Options opts;
    opts.split = true;
    opts.clusters = use_clusters ? &session.clusters() : nullptr;
    opts.track_links = true;
    auto res = tmesh.MulticastRekey(msg, opts);

    std::vector<double> recv, fwd;
    for (const auto& [id, info] : session.directory().members()) {
      (void)id;
      auto h = static_cast<std::size_t>(info.host);
      recv.push_back(static_cast<double>(res.member[h].encs_received));
      fwd.push_back(static_cast<double>(res.member[h].encs_forwarded));
    }
    std::vector<double> links(res.links.encryptions.begin(),
                              res.links.encryptions.end());
    std::printf(
        "%-28s cost=%5zu | encs recv p50=%5.0f p99=%6.0f max=%6.0f | "
        "fwd max=%6.0f | link max=%6.0f\n",
        name, msg.RekeyCost(), Percentile(recv, 50), Percentile(recv, 99),
        Percentile(recv, 100), Percentile(fwd, 100), Percentile(links, 100));
  };

  std::printf("\n");
  distribute("P1' (split)", full, false);
  distribute("P2' (split + clusters)", clustered, true);

  std::printf(
      "\nthe cluster heuristic shrinks both the rekey message (only leader\n"
      "paths re-key) and the per-user traffic: most viewers get exactly one\n"
      "pairwise-encrypted group key from their cluster leader.\n");
  return 0;
}
