// Secure conference: concurrent rekey and data transport — the scenario the
// paper's introduction motivates (teleconferences, multi-party games).
//
// 120 users join a conference over a PlanetLab-like network. Across several
// rekey intervals, members join and leave; at each interval end the key
// server batch-rekeys and multicasts the split rekey message, while a
// random speaker simultaneously multicasts data over the same neighbor
// tables (T-mesh builds per-source trees from the same tables, so rekey and
// data transport coexist). Prints per-interval rekey cost, bandwidth, and
// latency for both kinds of traffic.
//
// Run: ./secure_conference
#include <cstdio>

#include "common/stats.h"
#include "core/tmesh.h"
#include "protocols/group_session.h"
#include "topology/planetlab.h"

int main() {
  using namespace tmesh;

  PlanetLabParams net_params;
  net_params.hosts = 241;  // server + up to 240 users
  net_params.seed = 11;
  PlanetLabNetwork net(net_params);

  SessionConfig cfg;
  cfg.group = GroupParams{5, 256, 4};
  cfg.assign.thresholds_ms = {150.0, 30.0, 9.0, 3.0};
  cfg.with_nice = false;
  cfg.seed = 2024;
  GroupSession session(net, 0, cfg);
  Rng rng(99);

  // Initial audience.
  std::vector<HostId> free_hosts;
  for (HostId h = 120 + 1; h <= 240; ++h) free_hosts.push_back(h);
  SimTime now = 0;
  for (HostId h = 1; h <= 120; ++h) {
    now += FromSeconds(1);
    if (!session.Join(h, now).has_value()) return 1;
  }
  session.FlushRekeyState();
  std::printf("conference started: %d members\n",
              session.directory().member_count());

  std::printf("\n%-9s %-7s %-11s %-13s %-13s %-12s %-12s\n", "interval",
              "joins", "leaves", "rekey_cost", "avg_encs/usr", "rekey_p95ms",
              "data_p95ms");

  for (int interval = 1; interval <= 8; ++interval) {
    // Churn during the interval.
    int joins = static_cast<int>(rng.UniformInt(2, 10));
    int leaves = static_cast<int>(rng.UniformInt(2, 10));
    int joined = 0, left = 0;
    for (int i = 0; i < joins && !free_hosts.empty(); ++i) {
      HostId h = free_hosts.back();
      now += FromSeconds(rng.UniformReal(0.5, 5));
      if (session.Join(h, now).has_value()) {
        free_hosts.pop_back();
        ++joined;
      }
    }
    for (int i = 0; i < leaves; ++i) {
      auto victim = session.directory().RandomAliveMember(rng);
      if (!victim.has_value()) break;
      free_hosts.push_back(session.directory().HostOf(*victim));
      session.Leave(*victim);
      ++left;
    }

    // Interval end: batch rekey + split multicast.
    RekeyMessage msg = session.key_tree().Rekey();
    (void)session.clusters().Rekey();
    Simulator sim;
    TMesh tmesh(session.directory(), sim);
    TMesh::Options opts;
    opts.split = true;
    auto rekey_res = tmesh.MulticastRekey(msg, opts);

    // A speaker multicasts data concurrently (separate session for metrics;
    // same tables).
    auto speaker = session.directory().RandomAliveMember(rng);
    Simulator sim2;
    TMesh tmesh2(session.directory(), sim2);
    auto data_res = tmesh2.MulticastData(*speaker);

    std::vector<double> encs, rekey_delay, data_delay;
    for (const auto& [id, info] : session.directory().members()) {
      auto h = static_cast<std::size_t>(info.host);
      encs.push_back(static_cast<double>(rekey_res.member[h].encs_received));
      rekey_delay.push_back(rekey_res.member[h].delay_ms);
      if (id != *speaker) data_delay.push_back(data_res.member[h].delay_ms);
    }
    std::printf("%-9d %-7d %-11d %-13zu %-13.1f %-12.1f %-12.1f\n", interval,
                joined, left, msg.RekeyCost(), Mean(encs),
                Percentile(rekey_delay, 95), Percentile(data_delay, 95));
  }

  session.directory().CheckKConsistency();
  std::printf("\nfinal membership: %d; neighbor tables K-consistent.\n",
              session.directory().member_count());
  std::printf("note: avg encryptions per user stays near the rekey cost's "
              "logarithmic share\nthanks to rekey-message splitting, even "
              "though the message itself holds hundreds.\n");
  return 0;
}
