// Multi-process group rekeying over real UDP sockets (DESIGN.md §3h).
//
// The transport seam's end-to-end demonstration: the SAME KeyServer that
// every simulation in this repo drives now runs as an actual server
// process on the wall clock, distributing rekey messages to N member
// processes over 127.0.0.1 UDP — join, leave, and periodic batch rekeying
// with real datagrams, real timers, and real process isolation.
//
//   parent  = key server on a UdpTransport; wall-clock rekey intervals
//             (--interval-ms); SetIntervalHandler exports each interval's
//             rekey message as wire.cc bytes, unicast to every member that
//             ever joined — including departed ones, which is exactly what
//             an eavesdropping ex-member would capture off the wire.
//   children = forked member processes. Each joins through a real datagram
//             handshake (J → W with its assigned ID and granted path keys),
//             then folds every received rekey frame into its key holdings
//             with the fixed-point decryption closure (Lemma 3 semantics,
//             the churn fuzzer's model) and checks, per frame:
//
//               * alive member:   closure reaches the new group key version
//                 (decryption closure — nobody is locked out), and
//               * departed member: closure does NOT reach it (forward
//                 secrecy — the §2.4 batch rekey cut it out), even though
//                 it received the ciphertext bytes.
//
// One designated member leaves after the first rekey frame, so both halves
// of the invariant are exercised from captured wire traffic. Every process
// verdict flows back through exit codes; the run prints a per-interval
// summary and PASS/FAIL. Exit 0 iff every invariant held in every process.
//
// Frames ride as UdpTransport payloads (after its 8-byte header), all
// little-endian:
//   'J'                                    member → server   join request
//   'W' id r_base count {len digits ver}*  server → member   welcome+keys
//   'L'                                    member → server   leave request
//   'K' r_seen                             server → member   leave ack
//   'R' index root_ver <EncodeRekeyMessage> server → member  rekey frame
//   'D' r_total                            server → member   done
//
// Run:  ./multiproc_rekey [--members=6] [--intervals=4] [--interval-ms=200]
//       [--seed=7]
// The loopback soak (scripts/soak_rekey.sh) loops this binary; a bounded
// configuration runs as the multiproc_rekey_smoke ctest.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/digit_string.h"
#include "core/key_server.h"
#include "core/wire.h"
#include "topology/planetlab.h"
#include "transport/udp_transport.h"

namespace tmesh {
namespace {

// --- tiny frame codec -----------------------------------------------------

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutDigits(std::vector<std::uint8_t>& out, const DigitString& s) {
  out.push_back(static_cast<std::uint8_t>(s.size()));
  for (int i = 0; i < s.size(); ++i) {
    out.push_back(static_cast<std::uint8_t>(s.digit(i)));
  }
}

// Bounds-checked cursor reads; any failure poisons the cursor.
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;
  bool ok = true;

  std::uint32_t U32() {
    if (left < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                      static_cast<std::uint32_t>(p[1]) << 8 |
                      static_cast<std::uint32_t>(p[2]) << 16 |
                      static_cast<std::uint32_t>(p[3]) << 24;
    p += 4;
    left -= 4;
    return v;
  }
  DigitString Digits() {
    if (left < 1) {
      ok = false;
      return DigitString{};
    }
    const int n = *p++;
    --left;
    if (left < static_cast<std::size_t>(n) || n > kMaxDigits) {
      ok = false;
      return DigitString{};
    }
    DigitString s = DigitString::FromDigits(p, n);
    p += n;
    left -= static_cast<std::size_t>(n);
    return s;
  }
};

// --- decryption closure (the churn fuzzer's Lemma 3 model) ----------------
//
// Grows `held` (key ID -> version) with every key reachable from the given
// encryptions: one is decryptable iff the holder has the encrypting key at
// exactly the emitted version.
void Close(std::map<KeyId, std::uint32_t>& held,
           const std::vector<Encryption>& encs) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (const Encryption& e : encs) {
      auto it = held.find(e.enc_key_id);
      if (it == held.end() || it->second != e.enc_key_version) continue;
      auto have = held.find(e.new_key_id);
      if (have != held.end() && have->second >= e.new_key_version) continue;
      held[e.new_key_id] = e.new_key_version;
      progress = true;
    }
  }
}

// --- member process -------------------------------------------------------

struct MemberOutcome {
  bool welcomed = false;
  int rekeys_seen = 0;
  int closure_failures = 0;   // alive but closure missed the new group key
  int secrecy_breaches = 0;   // departed yet closure reached the new key
  int gaps = 0;               // non-contiguous rekey frame indices
  std::optional<std::uint32_t> done_total;  // from the D frame
};

// Runs one member to completion and returns its exit code. Never returns
// to the forked caller's stack-on-main: the caller _exit()s with this.
int MemberMain(HostId host, std::uint16_t server_port, bool is_leaver) {
  UdpTransport bus(UdpTransport::Options{.host = host});
  bus.AddPeer(0, server_port);

  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;

  MemberOutcome out;
  std::map<KeyId, std::uint32_t> held;
  bool departed = false;
  std::uint32_t secrecy_from = 0;       // first rekey index the L precedes
  std::uint32_t frames_before_join = 0;  // rekey frames we never get
  std::optional<std::uint32_t> last_index;
  TimerId join_retry = kNoTimer;

  // The join handshake retries until the welcome lands (UDP is lossy in
  // principle, and the server process may still be setting up).
  std::function<void()> send_join = [&] {
    const std::uint8_t j = 'J';
    bus.Send(0, &j, 1);
    join_retry = bus.ScheduleTimer(FromMillis(50), [&] { send_join(); });
  };

  bus.OnReceive([&](HostId from, const std::uint8_t* data, std::size_t size) {
    if (from != 0 || size == 0) return;
    std::lock_guard<std::mutex> lock(mu);
    Cursor c{data + 1, size - 1};
    switch (data[0]) {
      case 'W': {
        if (out.welcomed) break;  // duplicate from a crossed retry
        (void)c.Digits();         // assigned member ID (informational)
        const std::uint32_t r_base = c.U32();  // rekey frames sent pre-join
        const std::uint32_t n = c.U32();
        for (std::uint32_t i = 0; c.ok && i < n; ++i) {
          const KeyId k = c.Digits();
          const std::uint32_t ver = c.U32();
          if (c.ok) held[k] = ver;
        }
        if (!c.ok) break;
        out.welcomed = true;
        frames_before_join = r_base;
        if (join_retry != kNoTimer) bus.CancelTimer(join_retry);
        break;
      }
      case 'R': {
        const std::uint32_t index = c.U32();
        const std::uint32_t root_ver = c.U32();
        auto msg = DecodeRekeyMessage(
            std::vector<std::uint8_t>(c.p, c.p + c.left));
        if (!c.ok || !msg.has_value()) break;
        if (last_index.has_value() && index != *last_index + 1) ++out.gaps;
        last_index = index;
        ++out.rekeys_seen;
        Close(held, msg->encryptions);
        const auto root = held.find(KeyId{});
        const bool reaches =
            root != held.end() && root->second >= root_ver;
        if (departed && index >= secrecy_from) {
          // Forward secrecy: the §2.4 rekey after our leave must be
          // ciphertext we cannot open, even holding every prior key.
          if (reaches) ++out.secrecy_breaches;
        } else if (!departed) {
          // Decryption closure: an alive member always reaches the new
          // group key from its holdings plus this message.
          if (!reaches) ++out.closure_failures;
          if (is_leaver && !departed) {
            const std::uint8_t l = 'L';
            bus.Send(0, &l, 1);
            departed = true;  // confirmed (and fenced) by the K ack
            secrecy_from = index + 1;
          }
        }
        break;
      }
      case 'K': {
        // Leave ack: frames numbered >= r_seen were produced after the
        // server processed our leave — the secrecy check applies to them.
        secrecy_from = c.U32();
        break;
      }
      case 'D': {
        out.done_total = c.U32();
        finished = true;
        cv.notify_all();
        break;
      }
      default:
        break;
    }
  });

  bus.Start();
  {
    std::lock_guard<std::mutex> lock(mu);
    send_join();
  }
  // Watchdog: a wedged run (lost D frame, dead server) fails loudly.
  bus.ScheduleTimer(FromSeconds(60), [&] {
    std::lock_guard<std::mutex> lock(mu);
    finished = true;
    cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return finished; });
  const MemberOutcome result = out;
  lock.unlock();
  bus.Stop();

  if (!result.welcomed) return 2;
  if (!result.done_total.has_value()) return 3;  // watchdog fired
  if (result.rekeys_seen !=
      static_cast<int>(*result.done_total - frames_before_join)) {
    return 4;
  }
  if (result.gaps != 0) return 4;
  if (result.closure_failures != 0) return 5;
  if (result.secrecy_breaches != 0) return 6;
  return 0;
}

// --- server process (the parent) ------------------------------------------

struct Flags {
  int members = 6;
  int intervals = 4;
  int interval_ms = 200;
  std::uint64_t seed = 7;
};

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--members=")) {
      f.members = std::atoi(v);
    } else if (const char* v = val("--intervals=")) {
      f.intervals = std::atoi(v);
    } else if (const char* v = val("--interval-ms=")) {
      f.interval_ms = std::atoi(v);
    } else if (const char* v = val("--seed=")) {
      f.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(64);
    }
  }
  if (f.members < 2 || f.intervals < 2 || f.interval_ms < 20) {
    std::fprintf(stderr,
                 "need --members>=2 --intervals>=2 --interval-ms>=20\n");
    std::exit(64);
  }
  return f;
}

int ServerMain(const Flags& flags) {
  PlanetLabParams net_params;
  net_params.hosts = flags.members + 1;
  net_params.seed = flags.seed;
  PlanetLabNetwork net(net_params);

  // Bind before forking so every child knows the server's port.
  UdpTransport bus(UdpTransport::Options{.host = 0});

  std::vector<pid_t> children;
  for (HostId h = 1; h <= static_cast<HostId>(flags.members); ++h) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 70;
    }
    if (pid == 0) {
      // Child: fresh transport, fresh sockets; the member with the highest
      // host id leaves after the first rekey frame.
      const bool leaver = h == static_cast<HostId>(flags.members);
      _exit(MemberMain(h, bus.port(), leaver));
    }
    children.push_back(pid);
  }

  KeyServer::Config cfg;
  cfg.net = &net;
  cfg.server_host = 0;
  cfg.group = GroupParams{3, 8, 4};
  cfg.assign.collect_target = 4;
  cfg.assign.thresholds_ms = {60.0, 20.0};
  cfg.rekey_interval = FromMillis(flags.interval_ms);
  cfg.seed = flags.seed;
  KeyServer server(bus, cfg);

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;

  std::map<HostId, UserId> roster;                   // ever-joined members
  std::map<HostId, std::vector<std::uint8_t>> welcomes;  // resend-identical
  std::set<HostId> departed;
  std::uint32_t rekey_frames = 0;
  int intervals_done = 0;

  bus.OnReceive([&](HostId from, const std::uint8_t* data, std::size_t size) {
    if (size == 0) return;
    switch (data[0]) {
      case 'J': {
        auto it = welcomes.find(from);
        if (it == welcomes.end()) {
          std::optional<UserId> id = server.RequestJoin(from);
          if (!id.has_value()) return;  // admission refused; member retries
          // Grant: the joiner's path keys at their live versions (§3.1's
          // unicast of the ID and current keys).
          std::vector<std::uint8_t> w;
          w.push_back('W');
          PutDigits(w, *id);
          PutU32(w, rekey_frames);  // frames this member will never see
          const std::vector<KeyId> keys = server.key_tree().KeysOf(*id);
          PutU32(w, static_cast<std::uint32_t>(keys.size()));
          for (const KeyId& k : keys) {
            PutDigits(w, k);
            PutU32(w, server.key_tree().KeyVersion(k));
          }
          roster.emplace(from, *id);
          it = welcomes.emplace(from, std::move(w)).first;
        }
        bus.Send(from, it->second);  // idempotent for retried joins
        break;
      }
      case 'L': {
        auto it = roster.find(from);
        if (it == roster.end() || departed.count(from) != 0) break;
        server.RequestLeave(it->second);
        departed.insert(from);
        std::vector<std::uint8_t> k;
        k.push_back('K');
        PutU32(k, rekey_frames);
        bus.Send(from, k);
        break;
      }
      default:
        break;
    }
  });

  server.SetIntervalHandler([&](const KeyServer::IntervalRecord& rec) {
    if (intervals_done >= flags.intervals) return;  // trailing Stop() tick
    ++intervals_done;
    std::printf("interval %d: joins=%d leaves=%d rekey_cost=%zu\n",
                intervals_done, rec.joins, rec.leaves, rec.rekey_cost);
    if (rec.delivery >= 0) {
      // Export the interval's rekey message as wire bytes to every member
      // that ever joined — departed ones too (they hold ciphertext an
      // eavesdropper would have; forward secrecy is checked against it).
      std::vector<std::uint8_t> r;
      r.push_back('R');
      PutU32(r, rekey_frames);
      PutU32(r, server.group_key_version());
      const std::vector<std::uint8_t> bytes =
          EncodeRekeyMessage(server.message(rec.delivery));
      r.insert(r.end(), bytes.begin(), bytes.end());
      for (const auto& [host, id] : roster) bus.Send(host, r);
      ++rekey_frames;
    }
    if (intervals_done == flags.intervals) {
      server.Stop();
      std::vector<std::uint8_t> d;
      d.push_back('D');
      PutU32(d, rekey_frames);
      for (const auto& [host, id] : roster) bus.Send(host, d);
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_all();
    }
  });

  bus.Start();
  server.Start();

  bool timed_out = false;
  {
    std::unique_lock<std::mutex> lock(mu);
    timed_out = !cv.wait_for(lock, std::chrono::seconds(90),
                             [&] { return done; });
  }

  int failures = 0;
  for (pid_t pid : children) {
    int status = 0;
    if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ++failures;
      std::fprintf(stderr, "member pid %d failed: status %d\n",
                   static_cast<int>(pid),
                   WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    }
  }
  bus.Stop();

  // Loopback never legitimately loses a sendto() — a nonzero dropped count
  // means the kernel rejected frames (ENOBUFS, short send) and the run's
  // delivery claims are suspect, so it fails the soak.
  const bool server_ok = !timed_out && rekey_frames >= 2 &&
                         departed.size() == 1 &&
                         roster.size() ==
                             static_cast<std::size_t>(flags.members) &&
                         bus.datagrams_dropped() == 0;
  std::printf(
      "members=%d intervals=%d rekey_frames=%u departed=%zu datagrams=%llu "
      "dropped=%llu\n",
      flags.members, intervals_done, rekey_frames, departed.size(),
      static_cast<unsigned long long>(bus.datagrams_sent()),
      static_cast<unsigned long long>(bus.datagrams_dropped()));
  if (server_ok && failures == 0) {
    std::printf("PASS: decryption closure and forward secrecy held over "
                "real UDP\n");
    return 0;
  }
  std::printf("FAIL: %d member process(es) failed, server_ok=%d\n", failures,
              server_ok ? 1 : 0);
  return 1;
}

}  // namespace
}  // namespace tmesh

int main(int argc, char** argv) {
  return tmesh::ServerMain(tmesh::ParseFlags(argc, argv));
}
