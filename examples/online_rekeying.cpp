// Online rekeying: the KeyServer running the paper's batch-rekey loop on
// the event simulator — join/leave requests arrive continuously, every
// rekey interval ends with a split rekey multicast, and members multicast
// data concurrently over the same neighbor tables.
//
// Run: ./online_rekeying
#include <cstdio>

#include "common/stats.h"
#include "core/key_server.h"
#include "transport/sim_transport.h"
#include "topology/planetlab.h"

int main() {
  using namespace tmesh;

  PlanetLabParams net_params;
  net_params.hosts = 161;
  net_params.seed = 13;
  PlanetLabNetwork net(net_params);

  Simulator sim;
  KeyServer::Config cfg;
  cfg.group = GroupParams{5, 256, 4};
  cfg.assign.thresholds_ms = {150.0, 30.0, 9.0, 3.0};
  cfg.rekey_interval = FromSeconds(60);
  cfg.split = true;
  cfg.net = &net;
  SimTransport bus(sim);
  KeyServer server(bus, cfg);

  // Bootstrap audience, then a churny hour.
  Rng rng(7);
  std::vector<HostId> free_hosts;
  for (HostId h = 160; h >= 1; --h) free_hosts.push_back(h);
  for (int i = 0; i < 100; ++i) {
    HostId h = free_hosts.back();
    free_hosts.pop_back();
    if (!server.RequestJoin(h).has_value()) return 1;
  }
  server.Start();

  // Churn events at random times across 10 intervals, plus one data
  // multicast per interval from a random member.
  std::vector<TMesh::Handle> data_sessions;
  for (int minute = 0; minute < 10; ++minute) {
    SimTime t0 = FromSeconds(60.0 * minute);
    int churn = static_cast<int>(rng.UniformInt(2, 8));
    for (int c = 0; c < churn; ++c) {
      SimTime when = t0 + FromSeconds(rng.UniformReal(1.0, 59.0));
      bool join = rng.Bernoulli(0.5) && !free_hosts.empty();
      if (join) {
        HostId h = free_hosts.back();
        free_hosts.pop_back();
        sim.ScheduleAt(when, [&server, h]() { (void)server.RequestJoin(h); });
      } else {
        sim.ScheduleAt(when, [&server, &rng]() {
          auto victim = server.directory().RandomAliveMember(rng);
          if (victim.has_value() && server.directory().member_count() > 10) {
            server.RequestLeave(*victim);
          }
        });
      }
    }
    SimTime dt = t0 + FromSeconds(rng.UniformReal(5.0, 55.0));
    sim.ScheduleAt(dt, [&server, &rng, &data_sessions]() {
      auto sender = server.directory().RandomAliveMember(rng);
      if (sender.has_value()) {
        data_sessions.push_back(server.MulticastData(*sender));
      }
    });
  }

  sim.RunUntil(FromSeconds(60.0 * 10 + 5));
  server.Stop();
  sim.Run();

  std::printf("ten rekey intervals (60 s each), group key version now v%u\n\n",
              server.group_key_version());
  std::printf("%-10s%-8s%-8s%-12s%-14s%-16s\n", "interval", "joins",
              "leaves", "rekey_cost", "reached", "p95_delay_ms");
  for (std::size_t i = 0; i < server.history().size(); ++i) {
    const auto& rec = server.history()[i];
    if (rec.delivery < 0) {
      std::printf("%-10zu%-8d%-8d%-12zu%-14s%-16s\n", i, rec.joins,
                  rec.leaves, rec.rekey_cost, "(quiet)", "-");
      continue;
    }
    const TMesh::Result& res = server.delivery(rec.delivery);
    std::vector<double> delays;
    for (const auto& m : res.member) {
      if (m.copies > 0) delays.push_back(m.delay_ms);
    }
    std::printf("%-10zu%-8d%-8d%-12zu%-14d%-16.1f\n", i, rec.joins,
                rec.leaves, rec.rekey_cost, res.ReceivedCount(),
                Percentile(delays, 95));
  }

  int data_ok = 0;
  for (const auto& h : data_sessions) {
    if (h.result().ReceivedCount() > 0) ++data_ok;
  }
  std::printf("\nconcurrent data multicasts delivered: %d/%zu\n", data_ok,
              data_sessions.size());
  std::printf("final membership: %d users; tables K-consistent: ",
              server.directory().member_count());
  server.directory().CheckKConsistency();
  std::printf("yes\n");
  return 0;
}
