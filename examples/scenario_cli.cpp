// scenario_cli: parameterized scenario runner — evaluate any Table-2 rekey
// protocol on either evaluation topology with custom churn, loss, and
// uplink settings, printing the metrics the paper reports.
//
//   ./scenario_cli --topology=gtitm --users=512 --joins=64 --leaves=64 \
//                  --protocol=p1s --uplink-kbps=1024 --loss=0.05
//
// Protocols: p1 (modified tree + T-mesh), p1s (.. + splitting),
//            p2 / p2s (.. + cluster heuristic), p0 / p0s (WGL + NICE),
//            pip (WGL + IP multicast; GT-ITM only).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/stats.h"
#include "core/tmesh.h"
#include "ipmc/ip_multicast.h"
#include "keytree/wgl_key_tree.h"
#include "protocols/group_session.h"
#include "protocols/nice_accounting.h"
#include "topology/gtitm.h"
#include "topology/planetlab.h"

namespace {

using namespace tmesh;

struct Args {
  std::string topology = "planetlab";
  std::string protocol = "p1s";
  int users = 226;
  int joins = 0;
  int leaves = 28;
  double loss = 0.0;
  double uplink_kbps = 0.0;
  std::uint64_t seed = 1;
};

bool Parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    auto val = [&](const char* key) -> const char* {
      std::size_t n = std::strlen(key);
      return std::strncmp(s, key, n) == 0 ? s + n : nullptr;
    };
    if (const char* v = val("--topology=")) {
      a.topology = v;
    } else if (const char* v = val("--protocol=")) {
      a.protocol = v;
    } else if (const char* v = val("--users=")) {
      a.users = std::atoi(v);
    } else if (const char* v = val("--joins=")) {
      a.joins = std::atoi(v);
    } else if (const char* v = val("--leaves=")) {
      a.leaves = std::atoi(v);
    } else if (const char* v = val("--loss=")) {
      a.loss = std::atof(v);
    } else if (const char* v = val("--uplink-kbps=")) {
      a.uplink_kbps = std::atof(v);
    } else if (const char* v = val("--seed=")) {
      a.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--topology=planetlab|gtitm] [--users=N] "
                   "[--joins=N] [--leaves=N]\n  [--protocol=p0|p0s|p1|p1s|"
                   "p2|p2s|pip] [--loss=P] [--uplink-kbps=R] [--seed=N]\n",
                   argv[0]);
      return false;
    }
  }
  return true;
}

void PrintStats(const char* label, std::vector<double> v) {
  if (v.empty()) {
    std::printf("  %-26s (none)\n", label);
    return;
  }
  std::printf("  %-26s p50 %10.1f   p95 %10.1f   p99 %10.1f   max %10.1f\n",
              label, Percentile(v, 50), Percentile(v, 95), Percentile(v, 99),
              Percentile(v, 100));
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) return 2;

  const bool gtitm = args.topology == "gtitm";
  const int hosts = 1 + args.users + args.joins;
  std::unique_ptr<Network> net;
  if (gtitm) {
    net = std::make_unique<GtItmNetwork>(GtItmParams{.seed = args.seed},
                                         hosts, args.seed + 1);
  } else {
    PlanetLabParams p;
    p.hosts = hosts;
    p.seed = args.seed;
    net = std::make_unique<PlanetLabNetwork>(p);
  }

  const bool nice_proto = args.protocol == "p0" || args.protocol == "p0s";
  const bool ip_proto = args.protocol == "pip";
  const bool cluster = args.protocol == "p2" || args.protocol == "p2s";
  const bool split = args.protocol.back() == 's';
  if (ip_proto && !gtitm) {
    std::fprintf(stderr, "pip needs --topology=gtitm (router-level paths)\n");
    return 2;
  }

  SessionConfig scfg;
  scfg.group = GroupParams{5, 256, 4};
  scfg.assign.thresholds_ms = {150.0, 30.0, 9.0, 3.0};
  scfg.with_nice = nice_proto;
  scfg.seed = args.seed * 3 + 7;
  GroupSession session(*net, 0, scfg);
  Rng rng(args.seed * 5 + 11);

  std::printf("building group: %d users on %s...\n", args.users,
              args.topology.c_str());
  for (HostId h = 1; h <= args.users; ++h) {
    if (!session.Join(h, h).has_value()) {
      std::fprintf(stderr, "ID space exhausted\n");
      return 1;
    }
  }
  session.FlushRekeyState();

  // Original key tree for the WGL-based protocols.
  WglKeyTree wgl(4);
  {
    std::vector<MemberId> members;
    for (HostId h = 1; h <= args.users; ++h) members.push_back(h);
    wgl.BuildIncremental(members);
  }

  // Measured interval.
  std::vector<MemberId> wgl_joins, wgl_leaves;
  for (int i = 0; i < args.joins; ++i) {
    HostId h = static_cast<HostId>(args.users + 1 + i);
    if (!session.Join(h, 10000 + i).has_value()) break;
    wgl_joins.push_back(h);
  }
  for (int i = 0; i < args.leaves; ++i) {
    auto victim = session.directory().RandomAliveMember(rng);
    if (!victim.has_value()) break;
    HostId vh = session.directory().HostOf(*victim);
    session.Leave(*victim);
    // A join and leave of the same user within the interval cancel out in
    // the WGL batch.
    auto jit = std::find(wgl_joins.begin(), wgl_joins.end(), vh);
    if (jit != wgl_joins.end()) {
      wgl_joins.erase(jit);
    } else {
      wgl_leaves.push_back(vh);
    }
  }
  RekeyMessage msg = cluster ? (void(session.key_tree().Rekey()),
                                session.clusters().Rekey())
                             : (void(session.clusters().Rekey()),
                                session.key_tree().Rekey());
  RekeyMessage wgl_msg = wgl.Rekey(wgl_joins, wgl_leaves);

  std::printf("interval: %zu joins, %zu leaves; protocol %s\n",
              wgl_joins.size(), wgl_leaves.size(), args.protocol.c_str());

  std::vector<double> encs, delays, stress, links;
  std::size_t cost = 0;
  if (nice_proto) {
    cost = wgl_msg.RekeyCost();
    auto tree = session.nice()->RekeyFromServer(0);
    NiceBandwidth bw = AccountNiceRekey(*net, tree, wgl, wgl_msg, split);
    for (const auto& [id, info] : session.directory().members()) {
      (void)id;
      auto h = static_cast<std::size_t>(info.host);
      encs.push_back(static_cast<double>(bw.encs_received[h]));
      delays.push_back(tree.delay_ms[h]);
      stress.push_back(tree.stress[h]);
    }
    links.assign(bw.link_encryptions.begin(), bw.link_encryptions.end());
  } else if (ip_proto) {
    cost = wgl_msg.RekeyCost();
    auto& gnet = static_cast<GtItmNetwork&>(*net);
    IpMulticast ipmc(gnet);
    std::vector<HostId> receivers;
    for (const auto& [id, info] : session.directory().members()) {
      (void)id;
      receivers.push_back(info.host);
    }
    auto res = ipmc.Multicast(0, receivers, cost);
    for (HostId r : receivers) {
      encs.push_back(static_cast<double>(cost));
      delays.push_back(res.delay_ms[static_cast<std::size_t>(r)]);
      stress.push_back(0);
    }
    links.assign(res.link_encryptions.begin(), res.link_encryptions.end());
  } else {
    cost = msg.RekeyCost();
    Simulator sim;
    TMesh tmesh(session.directory(), sim);
    if (args.uplink_kbps > 0) {
      TMesh::UplinkModel up;
      up.kbps = args.uplink_kbps;
      tmesh.SetUplinkModel(up);
    }
    TMesh::Options opts;
    opts.split = split;
    opts.clusters = cluster ? &session.clusters() : nullptr;
    opts.track_links = net->HasRouterPaths();
    opts.loss_prob = args.loss;
    opts.loss_seed = args.seed + 99;
    auto res = tmesh.MulticastRekey(msg, opts);
    for (const auto& [id, info] : session.directory().members()) {
      (void)id;
      auto h = static_cast<std::size_t>(info.host);
      encs.push_back(static_cast<double>(res.member[h].encs_received));
      if (res.member[h].copies > 0) delays.push_back(res.member[h].delay_ms);
      stress.push_back(res.member[h].stress);
    }
    links.assign(res.links.encryptions.begin(), res.links.encryptions.end());
    std::printf("delivery: %d/%d members reached, %d transmissions "
                "(%d lost)\n",
                res.ReceivedCount(), session.directory().member_count(),
                res.messages_sent, res.messages_lost);
  }

  std::printf("rekey message: %zu encryptions\n\n", cost);
  PrintStats("encs received / user", encs);
  PrintStats("delivery delay [ms]", delays);
  PrintStats("user stress [msgs]", stress);
  if (!links.empty()) PrintStats("encs / physical link", links);
  return 0;
}
