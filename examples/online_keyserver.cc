// Online key-server driver: interleaving simulation slices with external
// work via Simulator::RunFor / Step.
//
// The paper's key server is an online component — it accumulates join/leave
// requests and rekeys at interval boundaries (§1, §2.4) — so a real
// deployment wraps it in a service loop: pull requests from the outside
// world, feed them to the server, advance the protocol machinery, repeat.
// Run()/RunUntil() cannot express that loop (they drain the world before
// returning control); RunFor's budgeted slices can. This example drives ten
// rekey intervals that way:
//
//   - an "inbox" of externally-arriving join/leave commands stands in for
//     the service's I/O (a socket, a queue, an admin console),
//   - each loop iteration applies the commands that have arrived, then runs
//     the simulator up to the next interval tick — in event-capped chunks,
//     checking the inbox between chunks exactly like a poll loop would,
//   - KeyServer::next_interval_at() supplies the RunFor deadline, and the
//     returned RunStatus says whether the slice drained, hit its event cap,
//     or reached the tick.
//
// The final interval is single-stepped with Simulator::Step() to show the
// per-event granularity, and the Stop()/Start() lifecycle is exercised
// mid-run (pausing rekeying during a "maintenance window" without losing
// the batch).
//
// Run: ./online_keyserver
#include <cstdio>
#include <vector>

#include "core/key_server.h"
#include "transport/sim_transport.h"
#include "topology/planetlab.h"

int main() {
  using namespace tmesh;

  PlanetLabParams net_params;
  net_params.hosts = 129;
  net_params.seed = 29;
  PlanetLabNetwork net(net_params);

  Simulator::Options sopts;
  sopts.discipline = QueueDiscipline::kCalendar;
  sopts.adaptive_retune = true;  // interval ticks are exactly the bursty case
  Simulator sim(sopts);

  KeyServer::Config cfg;
  cfg.group = GroupParams{4, 16, 3};
  cfg.assign.thresholds_ms = {150.0, 30.0, 9.0};
  cfg.rekey_interval = FromSeconds(30);
  cfg.net = &net;
  SimTransport bus(sim);
  KeyServer server(bus, cfg);

  // The external command feed: (arrival interval, join?) pairs, as if read
  // off a socket. Deterministic here so the example's output is stable.
  Rng rng(101);
  std::vector<HostId> free_hosts;
  for (HostId h = 128; h >= 1; --h) free_hosts.push_back(h);
  std::vector<UserId> members;
  for (int i = 0; i < 48; ++i) {
    HostId h = free_hosts.back();
    free_hosts.pop_back();
    auto id = server.RequestJoin(h);
    if (!id.has_value()) return 1;
    members.push_back(*id);
  }
  server.Start();

  std::printf("%-10s%-9s%-9s%-10s%-12s%-10s\n", "interval", "cmds",
              "events", "slices", "stop", "t_s");
  const int kIntervals = 10;
  for (int interval = 0; interval < kIntervals; ++interval) {
    // "Maintenance window": rekeying pauses for interval 5. Stop() is
    // idempotent and the in-flight tick still fires once, so the batch
    // accumulated before the pause is processed, not dropped; Start() below
    // reuses that tick instead of double-scheduling.
    if (interval == 5) server.Stop();
    if (interval == 6) server.Start();

    // Poll the inbox: commands that "arrived" since the last slice.
    int cmds = static_cast<int>(rng.UniformInt(1, 6));
    for (int c = 0; c < cmds; ++c) {
      bool join = rng.Bernoulli(0.6) && !free_hosts.empty();
      if (join) {
        HostId h = free_hosts.back();
        free_hosts.pop_back();
        auto id = server.RequestJoin(h);
        if (id.has_value()) members.push_back(*id);
      } else if (members.size() > 8) {
        std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(members.size()) - 1));
        free_hosts.push_back(server.directory().HostOf(members[pick]));
        server.RequestLeave(members[pick]);
        members.erase(members.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }

    // Advance to the end of this interval: past the tick when one is armed
    // (next_interval_at), or just the interval span while rekeying is
    // stopped. Event-capped chunks keep control returning to this loop —
    // the poll point a real service would use.
    SimTime tick = server.next_interval_at();
    SimTime deadline = tick != kNoTime ? tick : sim.Now() + cfg.rekey_interval;
    std::size_t events = 0;
    int slices = 0;
    RunStatus status;
    do {
      status = sim.RunFor(EventBudget{256, deadline});
      events += status.events_run;
      ++slices;
    } while (status.exhausted_reason == Exhausted::kEvents);

    std::printf("%-10d%-9d%-9zu%-10d%-12s%-10.0f\n", interval, cmds, events,
                slices,
                status.exhausted_reason == Exhausted::kDrained ? "drained"
                                                               : "deadline",
                static_cast<double>(sim.Now()) / 1e6);
  }

  // Shut down and drain the tail one event at a time: Step() gives the
  // per-event control an inspector or debugger hook wants.
  server.Stop();
  std::size_t tail = 0;
  while (sim.Step()) ++tail;
  std::printf("\ndrained %zu tail events after Stop(); clock %.0f s\n", tail,
              static_cast<double>(sim.Now()) / 1e6);

  std::printf("\n%-10s%-8s%-8s%-12s%-10s\n", "interval", "joins", "leaves",
              "rekey_cost", "reached");
  for (std::size_t i = 0; i < server.history().size(); ++i) {
    const auto& rec = server.history()[i];
    if (rec.delivery < 0) {
      std::printf("%-10zu%-8d%-8d%-12zu%-10s\n", i, rec.joins, rec.leaves,
                  rec.rekey_cost, "(quiet)");
      continue;
    }
    std::printf("%-10zu%-8d%-8d%-12zu%-10d\n", i, rec.joins, rec.leaves,
                rec.rekey_cost, server.delivery(rec.delivery).ReceivedCount());
  }

  std::printf("\nfinal membership: %d users; group key v%u; K-consistent: ",
              server.directory().member_count(), server.group_key_version());
  server.directory().CheckKConsistency();
  std::printf("yes\n");
  return 0;
}
