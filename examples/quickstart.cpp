// Quickstart: the whole system in one small session.
//
// Builds a 12-user secure group over a synthetic PlanetLab-like network:
// users join through the distributed ID-assignment protocol, the directory
// keeps their neighbor tables K-consistent, the modified key tree tracks
// their keys, and after a member leaves the key server batch-rekeys and
// multicasts the (split) rekey message over T-mesh. Prints each step.
//
// Run: ./quickstart
#include <cstdio>

#include "core/tmesh.h"
#include "protocols/group_session.h"
#include "topology/planetlab.h"

int main() {
  using namespace tmesh;

  // 1. A network: 1 key server (host 0) + 12 user hosts.
  PlanetLabParams net_params;
  net_params.hosts = 13;
  net_params.seed = 7;
  PlanetLabNetwork net(net_params);

  // 2. A group session: D=3 digits base 8 (small, so the printout is
  // readable), K=2 neighbors per table entry, thresholds 60/20 ms.
  SessionConfig cfg;
  cfg.group = GroupParams{3, 8, 2};
  cfg.assign.collect_target = 4;
  cfg.assign.thresholds_ms = {60.0, 20.0};
  cfg.with_nice = false;
  cfg.seed = 42;
  GroupSession session(net, /*server_host=*/0, cfg);

  std::printf("== joins (proximity-aware ID assignment) ==\n");
  for (HostId h = 1; h <= 12; ++h) {
    IdAssignStats stats;
    auto id = session.Join(h, /*time=*/h, &stats);
    if (!id.has_value()) {
      std::printf("host %d: ID space exhausted\n", h);
      continue;
    }
    std::printf("host %2d -> ID %-10s (%d queries, %d RTT probes)\n", h,
                id->ToString().c_str(), stats.queries, stats.rtt_probes);
  }
  session.directory().CheckKConsistency();
  std::printf("neighbor tables are K-consistent.\n");
  session.FlushRekeyState();  // initial keys are unicast at join time

  // 3. A member leaves; the server batch-rekeys at the interval end.
  UserId leaver = *session.directory().IdOfHost(5);
  std::printf("\n== member %s (host 5) leaves ==\n",
              leaver.ToString().c_str());
  session.Leave(leaver);
  RekeyMessage msg = session.key_tree().Rekey();
  std::printf("rekey message: %zu encryptions\n", msg.RekeyCost());
  for (const Encryption& e : msg.encryptions) {
    std::printf("  {new key %-8s v%u} under key %s\n",
                e.new_key_id.ToString().c_str(), e.new_key_version,
                e.enc_key_id.ToString().c_str());
  }

  // 4. Multicast it over T-mesh with rekey-message splitting.
  Simulator sim;
  TMesh tmesh(session.directory(), sim);
  TMesh::Options opts;
  opts.split = true;
  auto res = tmesh.MulticastRekey(msg, opts);

  std::printf("\n== delivery (split multicast) ==\n");
  std::printf("%-10s %-6s %-10s %-8s %-6s\n", "member", "host", "delay_ms",
              "encs", "level");
  for (const auto& [id, info] : session.directory().members()) {
    const auto& rec = res.member[static_cast<std::size_t>(info.host)];
    std::printf("%-10s %-6d %-10.2f %-8lld %-6d\n", id.ToString().c_str(),
                info.host, rec.delay_ms,
                static_cast<long long>(rec.encs_received), rec.forward_level);
  }
  std::printf("\nevery member received exactly the encryptions it needs "
              "(Lemma 3 + Theorem 2);\nwithout splitting each would have "
              "received all %zu.\n",
              msg.RekeyCost());
  return 0;
}
