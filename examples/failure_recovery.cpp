// Failure recovery: why K > 1 neighbors per entry matter (§2.3, §3.2).
//
// An 80-user group runs with K = 4. A tenth of the members crash without
// warning; before anyone repairs anything, the key server multicasts — the
// forwarders detect dead primaries and fall through to backup neighbors in
// the same table entries, so every surviving member is still reached.
// Then recovery runs (the Silk-style repair), K-consistency is restored,
// and the next multicast is clean. Finally the same crash pattern is shown
// with K = 1, where subtrees can be cut off.
//
// Run: ./failure_recovery
#include <cstdio>

#include "core/tmesh.h"
#include "protocols/group_session.h"
#include "topology/planetlab.h"

namespace {

using namespace tmesh;

int RunScenario(int capacity, std::uint64_t seed) {
  PlanetLabParams net_params;
  net_params.hosts = 81;
  net_params.seed = 23;
  PlanetLabNetwork net(net_params);

  SessionConfig cfg;
  cfg.group = GroupParams{3, 16, capacity};
  cfg.assign.collect_target = 6;
  cfg.assign.thresholds_ms = {60.0, 15.0};
  cfg.with_nice = false;
  cfg.seed = seed;
  GroupSession session(net, 0, cfg);
  for (HostId h = 1; h <= 80; ++h) {
    if (!session.Join(h, h).has_value()) return -1;
  }
  session.FlushRekeyState();

  // Crash 8 members (no table repair yet).
  Rng rng(seed * 3 + 1);
  std::vector<UserId> crashed;
  for (int i = 0; i < 8; ++i) {
    auto victim = session.directory().RandomAliveMember(rng);
    session.directory().MarkFailed(*victim);
    crashed.push_back(*victim);
  }

  Simulator sim;
  TMesh tmesh(session.directory(), sim);
  auto res = tmesh.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  int reached = res.ReceivedCount();
  int alive = session.directory().alive_count();
  std::printf("  K=%d: crashed 8/80; multicast reached %d of %d survivors\n",
              capacity, reached, alive);

  // Recovery: purge the failed members and refill entries.
  for (const UserId& f : crashed) session.directory().RepairFailure(f);
  session.directory().CheckKConsistency();
  Simulator sim2;
  TMesh tmesh2(session.directory(), sim2);
  auto res2 = tmesh2.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  std::printf("  K=%d: after repair, multicast reached %d of %d "
              "(tables K-consistent again)\n",
              capacity, res2.ReceivedCount(),
              session.directory().alive_count());
  return alive - reached;
}

}  // namespace

int main() {
  std::printf("== failure resilience with backup neighbors ==\n");
  int missed_k4 = RunScenario(/*capacity=*/4, /*seed=*/9);
  std::printf("\n== same crash rate with K = 1 (no backups) ==\n");
  int missed_k1 = RunScenario(/*capacity=*/1, /*seed=*/9);
  std::printf(
      "\nsurvivors missed: %d with K=4 vs %d with K=1 — \"it is desired to "
      "let K > 1 for resilience\" (§2.2).\n",
      missed_k4 < 0 ? 0 : missed_k4, missed_k1 < 0 ? 0 : missed_k1);
  return 0;
}
